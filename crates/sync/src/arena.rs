//! Keyed lock arena: millions of logical locks with an inline-word
//! fast path and futex-class parking.
//!
//! [`Arena<K, T>`] keys a space of logical locks (each protecting its
//! own `T`) by hash, exposing the full [`MutexHandle`](crate::MutexHandle)
//! acquisition
//! surface per key — `lock`, `try_lock`, deadline/abortable variants,
//! and the conditional `lock_when*` family. Two properties make it an
//! *arena* rather than a map of mutexes:
//!
//! * **Inline-word fast path.** An uncontended key is one `AtomicU64`
//!   (see [`sal_core::arena_word`]): acquisition is a single CAS, no
//!   lock core exists. This is the word-sized-futex shape (nsync,
//!   WebKit parking): the overwhelmingly common case — skewed traffic
//!   over a huge key space where almost every acquisition meets a free
//!   key — pays for a word, not a queue lock.
//! * **Bounded materialization.** Only a key that *observes contention*
//!   (a second arrival while held, or a conditional waiter that must
//!   block) promotes to a real lock core — the paper's bounded
//!   long-lived abortable lock plus a parking bucket — drawn from a
//!   bounded pool, and is demoted back to the inline word when the last
//!   participant leaves. Resident lock-core memory is therefore
//!   O(currently contended keys), not O(keys): the practical analogue
//!   of the paper's §6.2 bounded-space constructions.
//!
//! The contended path is the PR 7 resumable
//! [`EnterMachine`](sal_core::EnterMachine) driven park-style: between
//! `Pending` polls the waiter blocks on a per-pid adaptive
//! spin-then-park [`Waiter`] slot instead of spinning, and each unlock
//! hints every engaged slot awake (wakeups are hints; the machine
//! re-polls). Deadlines and caller signals are injected as the lock's
//! abort signal, so a waiter whose limit fires *while queued* abandons
//! on the paper's bounded abort path.
//!
//! ## Concurrency limits, honestly stated
//!
//! * Per key, at most `core_capacity - 1` threads participate in the
//!   core concurrently (one slot is the promotion proxy); further
//!   arrivals queue FIFO-ish for a process slot and block on a condvar.
//!   Conditional waiters hold their slot for the whole wait, so size
//!   `core_capacity` above the expected concurrent waiters per key.
//! * At most `pool` keys can be materialized at once. When the pool is
//!   exhausted, additional contended keys fall back to a degraded
//!   spin-with-backoff on the inline word (counted in
//!   [`ArenaStats::fallback_spins`]) until a core frees up — the
//!   classic bounded-space tradeoff: space stays bounded, the overflow
//!   path loses the RMR guarantee but never correctness.
//! * Locking the same key twice from one thread deadlocks, exactly like
//!   `std::sync::Mutex`.
//!
//! ## The promotion/demotion protocol
//!
//! The word states and transition rules live in
//! [`sal_core::arena_word`] (shared with the exhaustive interleaving
//! model in `tests/arena_protocol.rs`); DESIGN.md §13 walks the
//! argument. The short form:
//!
//! * A promoter acquires a pooled core with the reserved **proxy pid**
//!   so the core models "held by the current inline holder", then
//!   publishes with CAS `LOCKED_INLINE → MATERIALIZED(idx)`; a failed
//!   publish is fully undone.
//! * An inline holder whose unlock CAS fails was promoted under its
//!   feet and releases by exiting the proxy pid — sound because the
//!   paper's protocol is pid-keyed, not thread-keyed.
//! * Every participant is counted in the core's `users`; the last one
//!   out swaps `users` to a demoting sentinel (which proves the lock is
//!   free — any holder is a user), resets the word to `UNLOCKED`, and
//!   returns the core to the pool. Joiners increment `users` first and
//!   revalidate the word after, so a joiner either blocks demotion or
//!   observes it and retries from the word.
//!
//! ```
//! use sal_sync::Arena;
//!
//! let arena: Arena<u64, u64> = Arena::builder().build();
//! *arena.lock(&7) += 1;                        // inline CAS, no core
//! if let Some(mut g) = arena.try_lock(&8) {
//!     *g += 1;
//! }
//! assert_eq!(*arena.lock(&7), 1);
//! assert_eq!(arena.stats().resident_cores, 0); // nothing materialized
//! ```

use crate::ccs::{CcsRegistry, RegistrationGuard, WakePolicy};
use crate::{deadline_signal, timeout_deadline, AbortReason, Immediate};
use sal_core::arena_word as word;
use sal_core::long_lived::BoundedLongLivedLock;
use sal_core::park::{ParkResult, Waiter};
use sal_core::{EnterStep, LockCore};
use sal_memory::{AbortSignal, MemoryBuilder, NeverAbort, Pid, RawMemory};
use sal_obs::NoProbe;
use std::cell::UnsafeCell;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// The proxy pid a promoter enters a fresh core with, standing in for
/// the inline holder; never handed out by the pid bank.
const RESERVED: Pid = 0;

/// Re-poll cadence for waits limited by an arbitrary caller signal
/// (mirrors `ccs::SIGNAL_POLL`: nobody wakes us when a foreign signal
/// fires, so parked waiters re-check on this period).
const SIGNAL_POLL: Duration = Duration::from_micros(100);

/// How a blocked arena wait is bounded; the park/checkout flavour of
/// `ccs::Limit`, carried alongside the abort signal.
#[derive(Debug, Clone, Copy)]
enum Wait {
    /// Block as long as it takes (`lock`, `lock_when`).
    Forever,
    /// Give up once the instant passes (deadline variants; the same
    /// instant is injected as the lock's abort signal).
    Until(Instant),
    /// Re-poll the caller's signal every [`SIGNAL_POLL`] while blocked.
    Poll,
}

impl Wait {
    /// Whether this limit has expired (`signal` is the abort signal the
    /// same entry point injected into the lock).
    fn expired<S: AbortSignal + ?Sized>(
        &self,
        signal: &S,
        reason: AbortReason,
    ) -> Option<AbortReason> {
        match self {
            Wait::Forever => None,
            Wait::Until(t) => (Instant::now() >= *t).then_some(reason),
            Wait::Poll => signal.is_set().then_some(reason),
        }
    }

    /// Park on `w` until notified or this limit expires; `None` means
    /// notified (or spuriously woken — callers re-check), `Some` means
    /// the limit ended the wait.
    fn park<S: AbortSignal + ?Sized>(
        &self,
        w: &Waiter,
        signal: &S,
        reason: AbortReason,
    ) -> Option<AbortReason> {
        match self {
            Wait::Forever => {
                w.park_until(None);
                None
            }
            Wait::Until(t) => match w.park_until(Some(*t)) {
                ParkResult::Notified => None,
                ParkResult::TimedOut => Some(reason),
            },
            Wait::Poll => loop {
                match w.park_until(Some(Instant::now() + SIGNAL_POLL)) {
                    ParkResult::Notified => return None,
                    ParkResult::TimedOut => {
                        if signal.is_set() {
                            return Some(reason);
                        }
                    }
                }
            },
        }
    }
}

/// One logical lock: the inline word plus the protected value. Boxed
/// inside the shard map and never removed while the arena lives, so
/// references to it are stable across map growth.
struct Entry<T> {
    word: AtomicU64,
    data: UnsafeCell<T>,
}

/// One hash shard: a lazily populated key → entry map. Entries are only
/// ever inserted (the *cores* are what get reclaimed), so the read path
/// is a shared-lock map probe.
struct Shard<K, T> {
    map: RwLock<HashMap<K, Box<Entry<T>>>>,
}

/// Per-pid parking slot of a core's enter path: `engaged` is the
/// published "I may be parked" hint unlockers scan.
struct EnterSlot {
    engaged: AtomicBool,
    waiter: Waiter,
}

/// A pooled lock core: the paper lock, its memory, the participant
/// count driving demotion, the pid bank, the enter parking slots, and
/// the conditional-wait registry. Reused across materializations — a
/// demoted core is returned with its lock free and registry empty.
struct Core<T> {
    mem: RawMemory,
    lock: BoundedLongLivedLock,
    /// Participant count (joiners, holders, the promotion proxy) or
    /// [`word::USERS_DEMOTING`]; see the protocol in the module docs.
    users: AtomicUsize,
    pids: PidBank,
    slots: Box<[EnterSlot]>,
    ccs: CcsRegistry<T>,
}

impl<T> Core<T> {
    fn new(capacity: usize, branching: usize, policy: WakePolicy) -> Self {
        let mut b = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout(&mut b, capacity, branching);
        Core {
            mem: b.build_raw(capacity),
            lock,
            users: AtomicUsize::new(0),
            pids: PidBank::new(capacity),
            slots: (0..capacity)
                .map(|_| EnterSlot {
                    engaged: AtomicBool::new(false),
                    waiter: Waiter::new(),
                })
                .collect(),
            ccs: CcsRegistry::new(capacity, policy),
        }
    }

    /// Drive a resumable enter to resolution, parking between `Pending`
    /// polls. Returns whether the lock was acquired (`false` = the
    /// signal aborted the attempt on the bounded abort path).
    ///
    /// Lost-wakeup freedom is the Dekker pattern: the waiter stores
    /// `engaged` (SeqCst) *before* the poll's go-word read, the
    /// unlocker writes the go word (inside `exit_core`) *before*
    /// scanning `engaged` — so either the poll sees the handoff or the
    /// scan sees the engagement.
    fn enter_parked<S: AbortSignal + ?Sized>(&self, pid: Pid, signal: &S, wait: &Wait) -> bool {
        let mut machine = self.lock.begin_enter();
        let slot = &self.slots[pid];
        loop {
            slot.engaged.store(true, Ordering::SeqCst);
            match self
                .lock
                .poll_enter(&mut machine, &self.mem, pid, signal, &NoProbe)
            {
                EnterStep::Acquired { .. } => {
                    slot.engaged.store(false, Ordering::SeqCst);
                    return true;
                }
                EnterStep::Aborted { .. } => {
                    slot.engaged.store(false, Ordering::SeqCst);
                    return false;
                }
                EnterStep::Pending(_) => {
                    // Timeouts re-poll with the (now fired) signal and
                    // resolve through the machine's bounded abort.
                    match wait {
                        Wait::Forever => {
                            slot.waiter.park_until(None);
                        }
                        Wait::Until(t) => {
                            slot.waiter.park_until(Some(*t));
                        }
                        Wait::Poll => {
                            slot.waiter.park_until(Some(Instant::now() + SIGNAL_POLL));
                        }
                    }
                }
            }
        }
    }

    /// Unpark every engaged enter slot (hints — spurious wakes re-poll).
    fn wake_enter_waiters(&self) {
        for slot in self.slots.iter() {
            if slot.engaged.load(Ordering::SeqCst) {
                slot.waiter.unpark();
            }
        }
    }
}

/// Blocking FIFO-ish checkout of core process slots (pids `1 ..
/// capacity`; pid 0 is the promotion proxy). Threads beyond the core's
/// capacity block here until a participant leaves.
struct PidBank {
    free: Mutex<Vec<Pid>>,
    cv: Condvar,
}

impl PidBank {
    fn new(capacity: usize) -> Self {
        PidBank {
            // Popped from the back; seeded descending so low pids go
            // out first (cosmetic only).
            free: Mutex::new((1..capacity).rev().collect()),
            cv: Condvar::new(),
        }
    }

    /// Check out a pid, blocking under `wait`'s regime; `None` when the
    /// limit expired first.
    fn checkout<S: AbortSignal + ?Sized>(&self, wait: &Wait, signal: &S) -> Option<Pid> {
        let mut free = self.free.lock().unwrap();
        loop {
            if let Some(p) = free.pop() {
                return Some(p);
            }
            match wait {
                Wait::Forever => free = self.cv.wait(free).unwrap(),
                Wait::Until(t) => {
                    let now = Instant::now();
                    if now >= *t {
                        return None;
                    }
                    free = self.cv.wait_timeout(free, *t - now).unwrap().0;
                }
                Wait::Poll => {
                    if signal.is_set() {
                        return None;
                    }
                    free = self.cv.wait_timeout(free, SIGNAL_POLL).unwrap().0;
                }
            }
        }
    }

    fn release(&self, pid: Pid) {
        self.free.lock().unwrap().push(pid);
        self.cv.notify_one();
    }
}

/// The bounded core pool: slots are constructed lazily (first
/// allocation of each index), never torn down, and recycled through a
/// free list — so `built` is the high-water mark of concurrently
/// contended keys and the hard space bound is `pool × O(capacity²)`
/// words regardless of key count.
struct CorePool<T> {
    slots: Box<[OnceLock<Core<T>>]>,
    free: Mutex<Vec<u32>>,
    built: AtomicUsize,
    capacity: usize,
    branching: usize,
    policy: WakePolicy,
}

impl<T> CorePool<T> {
    fn new(pool: usize, capacity: usize, branching: usize, policy: WakePolicy) -> Self {
        CorePool {
            slots: (0..pool).map(|_| OnceLock::new()).collect(),
            free: Mutex::new(Vec::new()),
            built: AtomicUsize::new(0),
            capacity,
            branching,
            policy,
        }
    }

    /// Take a core: a recycled one off the free list, else construct
    /// the next never-used slot. `None` when the pool is exhausted.
    fn acquire(&self) -> Option<u32> {
        if let Some(i) = self.free.lock().unwrap().pop() {
            return Some(i);
        }
        loop {
            let b = self.built.load(Ordering::SeqCst);
            if b >= self.slots.len() {
                // Fully built: one more look at the free list (a racing
                // release may have restocked it).
                return self.free.lock().unwrap().pop();
            }
            if self
                .built
                .compare_exchange(b, b + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                let core = Core::new(self.capacity, self.branching, self.policy);
                let set = self.slots[b].set(core);
                debug_assert!(set.is_ok(), "slot {b} built twice");
                return Some(b as u32);
            }
        }
    }

    fn release(&self, idx: u32) {
        self.free.lock().unwrap().push(idx);
    }

    fn get(&self, idx: u32) -> &Core<T> {
        self.slots[idx as usize]
            .get()
            .expect("materialized index names a built core")
    }

    /// Cores currently checked out (materialized keys, right now).
    fn resident(&self) -> usize {
        self.built.load(Ordering::SeqCst) - self.free.lock().unwrap().len()
    }
}

/// Snapshot of arena-level counters; see [`Arena::stats`].
///
/// The memory-bound story in two numbers: `built_cores` (high-water
/// mark of concurrently contended keys, hard-capped by
/// `pool_capacity`) versus `keys` — at a million keys and a handful of
/// contended ones, `built_cores` stays a handful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Keys currently materialized (holding a pooled core).
    pub resident_cores: usize,
    /// High-water mark of cores ever constructed (≤ `pool_capacity`).
    pub built_cores: usize,
    /// The configured pool bound.
    pub pool_capacity: usize,
    /// Keys ever touched (entries in the shard maps).
    pub keys: usize,
    /// Inline → materialized transitions.
    pub promotions: u64,
    /// Materialized → inline reclamations (core returned to the pool).
    pub demotions: u64,
    /// Promotions undone because the holder released (or another
    /// promoter published) first.
    pub raced_promotions: u64,
    /// Degraded-path retries taken because the core pool was exhausted
    /// (the key stayed inline and the waiter spun with backoff).
    pub fallback_spins: u64,
}

/// Configures and constructs an [`Arena`]; obtain with
/// [`Arena::builder`].
#[derive(Debug)]
pub struct ArenaBuilder<K, T> {
    shards: usize,
    pool: usize,
    capacity: usize,
    branching: usize,
    policy: WakePolicy,
    _marker: PhantomData<fn() -> (K, T)>,
}

impl<K, T> ArenaBuilder<K, T> {
    /// Number of hash shards (rounded up to a power of two; default
    /// 64). More shards, less map-lock contention on first touches.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1).next_power_of_two();
        self
    }

    /// Bound on concurrently materialized keys (default 64). This is
    /// the resident-memory knob: lock-core space is `pool ×
    /// O(core_capacity²)` words, independent of key count.
    pub fn pool(mut self, cores: usize) -> Self {
        assert!(cores >= 1, "arena needs at least one pooled core");
        self.pool = cores;
        self
    }

    /// Process slots per core, including the promotion proxy (default
    /// 8, minimum 2): at most `n - 1` threads participate in one key's
    /// core concurrently; more block for a slot.
    pub fn core_capacity(mut self, n: usize) -> Self {
        assert!(n >= 2, "core capacity must cover the proxy plus a waiter");
        self.capacity = n;
        self
    }

    /// Branching factor of each core's tree (`2 ..= 64`, default 16 —
    /// cores are small, a flat tree wastes words).
    pub fn branching(mut self, w: usize) -> Self {
        self.branching = w;
        self
    }

    /// How core unlocks treat conditional waiters (default
    /// [`WakePolicy::Evaluate`]).
    pub fn wake_policy(mut self, policy: WakePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Build the arena.
    pub fn build(self) -> Arena<K, T> {
        assert!(
            self.pool <= word::MAX_CORE_INDEX,
            "pool exceeds the word encoding"
        );
        Arena {
            shards: (0..self.shards)
                .map(|_| Shard {
                    map: RwLock::new(HashMap::new()),
                })
                .collect(),
            shard_mask: self.shards - 1,
            hasher: RandomState::new(),
            pool: CorePool::new(self.pool, self.capacity, self.branching, self.policy),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            raced_promotions: AtomicU64::new(0),
            fallback_spins: AtomicU64::new(0),
        }
    }
}

/// A sharded, hash-keyed arena of logical locks with an inline-word
/// fast path and bounded lazy materialization; see the module docs.
///
/// Unlike [`AbortableMutex`](crate::AbortableMutex), no per-thread
/// registration is needed: any number of threads may use any key, and
/// process identities are checked out per contended acquisition from
/// the key's core.
pub struct Arena<K, T> {
    shards: Box<[Shard<K, T>]>,
    shard_mask: usize,
    hasher: RandomState,
    pool: CorePool<T>,
    promotions: AtomicU64,
    demotions: AtomicU64,
    raced_promotions: AtomicU64,
    fallback_spins: AtomicU64,
}

// Safety: `T` lives in per-entry `UnsafeCell`s handed out only under
// that entry's lock (inline word or core — mutual exclusion per key),
// so crossing threads needs exactly `T: Send`. Keys are shared and
// compared across threads (`K: Send + Sync`). Everything else is
// atomics, std locks, and the already-`Sync` core machinery.
unsafe impl<K: Send + Sync, T: Send> Send for Arena<K, T> {}
// Safety: as above — `&Arena` exposes `&T`/`&mut T` only through
// per-key mutual exclusion.
unsafe impl<K: Send + Sync, T: Send> Sync for Arena<K, T> {}

/// How a guard holds its key: through the inline word, or through a
/// materialized core with a checked-out pid.
#[derive(Debug, Clone, Copy)]
enum Mode {
    Inline,
    Core { idx: u32, pid: Pid },
}

/// Result of one promotion attempt.
enum Promote {
    /// Published: the key now routes through a core.
    Done,
    /// The publish CAS lost (holder released, or another promoter won);
    /// fully undone — re-read the word.
    Raced,
    /// No core available; degraded path.
    Exhausted,
}

impl<K: Hash + Eq + Clone, T: Default> Default for Arena<K, T> {
    fn default() -> Self {
        Self::builder().build()
    }
}

impl<K: Hash + Eq + Clone, T: Default> Arena<K, T> {
    /// Start configuring an arena (shards, pool bound, core capacity,
    /// branching, wake policy).
    pub fn builder() -> ArenaBuilder<K, T> {
        ArenaBuilder {
            shards: 64,
            pool: 64,
            capacity: 8,
            branching: 16,
            policy: WakePolicy::default(),
            _marker: PhantomData,
        }
    }

    /// An arena with default configuration.
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Resolve `key` to its entry, creating it (with `T::default()`) on
    /// first touch.
    fn entry(&self, key: &K) -> &Entry<T> {
        let shard = &self.shards[(self.hasher.hash_one(key) as usize) & self.shard_mask];
        {
            let map = shard.map.read().unwrap();
            if let Some(e) = map.get(key) {
                // Safety: entries are boxed and never removed while the
                // arena lives (maps only grow), so the pointee is
                // stable for the arena's — hence `&self`'s — lifetime.
                return unsafe { &*(&**e as *const Entry<T>) };
            }
        }
        let mut map = shard.map.write().unwrap();
        let e = map.entry(key.clone()).or_insert_with(|| {
            Box::new(Entry {
                word: AtomicU64::new(word::UNLOCKED),
                data: UnsafeCell::new(T::default()),
            })
        });
        // Safety: same stability argument as above.
        unsafe { &*(&**e as *const Entry<T>) }
    }

    // ---- plain acquisition --------------------------------------------

    /// Acquire `key`'s lock, waiting as long as it takes. Uncontended:
    /// one CAS on the inline word.
    pub fn lock(&self, key: &K) -> ArenaGuard<'_, K, T> {
        let entry = self.entry(key);
        let mode = self
            .acquire(entry, &NeverAbort, &Wait::Forever, AbortReason::Caller)
            .expect("unbounded acquire cannot fail");
        self.guard(entry, mode)
    }

    /// Acquire with an arbitrary abort signal; `None` if the attempt
    /// was abandoned. Like [`MutexHandle::lock_abortable`]: a signal
    /// firing after the lock is won still yields the guard.
    ///
    /// [`MutexHandle::lock_abortable`]: crate::MutexHandle::lock_abortable
    pub fn lock_abortable(
        &self,
        key: &K,
        signal: &(impl AbortSignal + ?Sized),
    ) -> Option<ArenaGuard<'_, K, T>> {
        let entry = self.entry(key);
        self.acquire(entry, signal, &Wait::Poll, AbortReason::Caller)
            .ok()
            .map(|mode| self.guard(entry, mode))
    }

    /// One near-immediate attempt: give up as soon as the key is
    /// observed held (a held *inline* key fails without materializing
    /// anything; a materialized key runs one bounded abortable enter).
    pub fn try_lock(&self, key: &K) -> Option<ArenaGuard<'_, K, T>> {
        self.lock_abortable(key, &Immediate)
    }

    /// Acquire unless `timeout` elapses first. The deadline rides the
    /// lock's abort signal: expiring while queued aborts on the bounded
    /// path.
    pub fn try_lock_for(&self, key: &K, timeout: Duration) -> Option<ArenaGuard<'_, K, T>> {
        self.try_lock_until(key, timeout_deadline(timeout))
    }

    /// Acquire unless the deadline passes first.
    pub fn try_lock_until(&self, key: &K, deadline: Instant) -> Option<ArenaGuard<'_, K, T>> {
        let entry = self.entry(key);
        self.acquire(
            entry,
            &deadline_signal(deadline),
            &Wait::Until(deadline),
            AbortReason::Deadline,
        )
        .ok()
        .map(|mode| self.guard(entry, mode))
    }

    // ---- conditional acquisition --------------------------------------

    /// Acquire `key`'s lock when `pred` holds over its value — the
    /// conditional critical section of
    /// [`MutexHandle::lock_when`](crate::MutexHandle::lock_when), per
    /// key. A waiting key materializes (the registry lives in the
    /// core), and demotes again once the last waiter leaves.
    pub fn lock_when<F>(&self, key: &K, pred: F) -> ArenaGuard<'_, K, T>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let entry = self.entry(key);
        let mode = self
            .acquire_when(
                entry,
                &pred,
                &NeverAbort,
                &Wait::Forever,
                AbortReason::Caller,
            )
            .expect("unbounded lock_when cannot fail");
        self.guard(entry, mode)
    }

    /// [`lock_when`](Self::lock_when) with a timeout; fails with
    /// [`AbortReason::Deadline`].
    pub fn lock_when_for<F>(
        &self,
        key: &K,
        pred: F,
        timeout: Duration,
    ) -> Result<ArenaGuard<'_, K, T>, AbortReason>
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.lock_when_until(key, pred, timeout_deadline(timeout))
    }

    /// [`lock_when`](Self::lock_when) with an absolute deadline.
    pub fn lock_when_until<F>(
        &self,
        key: &K,
        pred: F,
        deadline: Instant,
    ) -> Result<ArenaGuard<'_, K, T>, AbortReason>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let entry = self.entry(key);
        let mode = self.acquire_when(
            entry,
            &pred,
            &deadline_signal(deadline),
            &Wait::Until(deadline),
            AbortReason::Deadline,
        )?;
        Ok(self.guard(entry, mode))
    }

    /// [`lock_when`](Self::lock_when) with caller-side cancellation;
    /// fails with [`AbortReason::Caller`] once `signal` fires.
    pub fn lock_when_abortable<F>(
        &self,
        key: &K,
        pred: F,
        signal: &(impl AbortSignal + ?Sized),
    ) -> Result<ArenaGuard<'_, K, T>, AbortReason>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let entry = self.entry(key);
        let mode = self.acquire_when(entry, &pred, signal, &Wait::Poll, AbortReason::Caller)?;
        Ok(self.guard(entry, mode))
    }

    // ---- introspection ------------------------------------------------
}

impl<K, T> Arena<K, T> {
    /// Snapshot the arena counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            resident_cores: self.pool.resident(),
            built_cores: self.pool.built.load(Ordering::SeqCst),
            pool_capacity: self.pool.slots.len(),
            keys: self
                .shards
                .iter()
                .map(|s| s.map.read().unwrap().len())
                .sum(),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            raced_promotions: self.raced_promotions.load(Ordering::Relaxed),
            fallback_spins: self.fallback_spins.load(Ordering::Relaxed),
        }
    }

    /// Number of hash shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    // ---- the protocol -------------------------------------------------

    fn guard<'a>(&'a self, entry: &'a Entry<T>, mode: Mode) -> ArenaGuard<'a, K, T> {
        ArenaGuard {
            arena: self,
            entry,
            mode,
            _not_send: PhantomData,
        }
    }

    /// The dispatch loop behind every plain acquisition: CAS the inline
    /// word, promote on contention, or join the key's core and run the
    /// parked enter. On `Err` nothing is held or leaked.
    fn acquire<S: AbortSignal + ?Sized>(
        &self,
        entry: &Entry<T>,
        signal: &S,
        wait: &Wait,
        reason: AbortReason,
    ) -> Result<Mode, AbortReason> {
        let mut backoff = 0u32;
        loop {
            match word::decode(entry.word.load(Ordering::SeqCst)) {
                word::WordState::Unlocked => {
                    if entry
                        .word
                        .compare_exchange(
                            word::UNLOCKED,
                            word::LOCKED_INLINE,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return Ok(Mode::Inline);
                    }
                }
                word::WordState::LockedInline => {
                    // A pre-fired signal (try_lock) fails fast here
                    // without materializing anything.
                    if signal.is_set() {
                        return Err(reason);
                    }
                    match self.promote(entry) {
                        Promote::Done | Promote::Raced => {}
                        Promote::Exhausted => {
                            if let Some(r) = wait.expired(signal, reason) {
                                return Err(r);
                            }
                            self.fallback_spins.fetch_add(1, Ordering::Relaxed);
                            backoff_step(&mut backoff);
                        }
                    }
                }
                word::WordState::Materialized(idx) => {
                    let idx = idx as u32;
                    let core = self.pool.get(idx);
                    if !self.join(entry, core, idx) {
                        continue;
                    }
                    let Some(pid) = core.pids.checkout(wait, signal) else {
                        self.depart(entry, core, idx);
                        return Err(reason);
                    };
                    if core.enter_parked(pid, signal, wait) {
                        return Ok(Mode::Core { idx, pid });
                    }
                    core.pids.release(pid);
                    self.depart(entry, core, idx);
                    return Err(reason);
                }
            }
        }
    }

    /// The conditional-acquisition loop: acquire, check `pred`, and if
    /// false wait through the core's registry (materializing the key
    /// first when it is still inline). On `Ok` the lock is held and
    /// `pred` held at the last check.
    fn acquire_when<F, S>(
        &self,
        entry: &Entry<T>,
        pred: &F,
        signal: &S,
        wait: &Wait,
        reason: AbortReason,
    ) -> Result<Mode, AbortReason>
    where
        F: Fn(&T) -> bool + Sync,
        S: AbortSignal + ?Sized,
    {
        let mut backoff = 0u32;
        'fresh: loop {
            let mut mode = self.acquire(entry, signal, wait, reason)?;
            let mut woken = false;
            loop {
                // Safety: we hold the key's lock (in either mode).
                if pred(unsafe { &*entry.data.get() }) {
                    return Ok(mode);
                }
                if let Mode::Core { idx, .. } = mode {
                    if woken {
                        self.pool.get(idx).ccs.note_futile();
                    }
                }
                if let Some(r) = wait.expired(signal, reason) {
                    self.unlock(entry, mode);
                    return Err(r);
                }
                match mode {
                    Mode::Core { idx, pid } => {
                        let core = self.pool.get(idx);
                        let reg = RegistrationGuard::register(&core.ccs, pid, pred);
                        // Release while keeping our pid and users seat —
                        // a registered waiter must block demotion (its
                        // registration lives in this core).
                        self.core_exit(entry, core, pid);
                        core.ccs.note_wait();
                        let expired = wait.park(core.ccs.cond_waiter(pid), signal, reason);
                        let notified = reg.deregister();
                        if let Some(r) = expired {
                            core.pids.release(pid);
                            self.depart(entry, core, idx);
                            return Err(r);
                        }
                        woken = notified;
                        // Re-acquire through the core with the seat we
                        // kept; an abort here ends the whole wait.
                        if !core.enter_parked(pid, signal, wait) {
                            core.pids.release(pid);
                            self.depart(entry, core, idx);
                            return Err(reason);
                        }
                    }
                    Mode::Inline => {
                        // To wait we need a registry, i.e. a core:
                        // promote while holding.
                        match self.materialize_held(entry) {
                            Ok((idx, pid)) => {
                                mode = Mode::Core { idx, pid };
                            }
                            Err(Promote::Raced) => {
                                // Someone else materialized under us:
                                // release through the proxy and come
                                // back in core mode.
                                self.unlock(entry, Mode::Inline);
                                continue 'fresh;
                            }
                            Err(_) => {
                                // Pool exhausted: degrade to re-polling
                                // the predicate with backoff.
                                self.unlock(entry, Mode::Inline);
                                self.fallback_spins.fetch_add(1, Ordering::Relaxed);
                                backoff_step(&mut backoff);
                                continue 'fresh;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Promote a held-by-someone-else inline key: acquire a pooled core
    /// through the proxy pid (modelling the current holder), publish,
    /// or undo completely.
    fn promote(&self, entry: &Entry<T>) -> Promote {
        let Some(idx) = self.pool.acquire() else {
            return Promote::Exhausted;
        };
        let core = self.pool.get(idx);
        core.users.fetch_add(1, Ordering::SeqCst); // the proxy's seat
        let outcome = core
            .lock
            .enter_core(&core.mem, RESERVED, &NeverAbort, &NoProbe);
        debug_assert!(outcome.entered(), "fresh core acquires immediately");
        if entry
            .word
            .compare_exchange(
                word::LOCKED_INLINE,
                word::materialized(idx as usize),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            self.promotions.fetch_add(1, Ordering::Relaxed);
            Promote::Done
        } else {
            core.lock.exit_core(&core.mem, RESERVED, &NoProbe);
            core.users.fetch_sub(1, Ordering::SeqCst);
            self.pool.release(idx);
            self.raced_promotions.fetch_add(1, Ordering::Relaxed);
            Promote::Raced
        }
    }

    /// Promote a key *we* hold inline (conditional waits need a core to
    /// register in): transfer the hold to our own checked-out pid.
    fn materialize_held(&self, entry: &Entry<T>) -> Result<(u32, Pid), Promote> {
        let Some(idx) = self.pool.acquire() else {
            return Err(Promote::Exhausted);
        };
        let core = self.pool.get(idx);
        core.users.fetch_add(1, Ordering::SeqCst);
        let pid = core
            .pids
            .checkout(&Wait::Poll, &Immediate)
            .expect("fresh core has free pids");
        let outcome = core.lock.enter_core(&core.mem, pid, &NeverAbort, &NoProbe);
        debug_assert!(outcome.entered(), "fresh core acquires immediately");
        if entry
            .word
            .compare_exchange(
                word::LOCKED_INLINE,
                word::materialized(idx as usize),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            self.promotions.fetch_add(1, Ordering::Relaxed);
            Ok((idx, pid))
        } else {
            // A concurrent promoter won the publish; its proxy now
            // models our hold. Undo our core entirely.
            core.lock.exit_core(&core.mem, pid, &NoProbe);
            core.pids.release(pid);
            core.users.fetch_sub(1, Ordering::SeqCst);
            self.pool.release(idx);
            self.raced_promotions.fetch_add(1, Ordering::Relaxed);
            Err(Promote::Raced)
        }
    }

    /// Become a counted participant of `core`, or back off (`false`) if
    /// the core is demoting / no longer serves this entry. Increment
    /// first, revalidate the word after — the demotion-race half of the
    /// protocol (module docs).
    fn join(&self, entry: &Entry<T>, core: &Core<T>, idx: u32) -> bool {
        loop {
            let u = core.users.load(Ordering::SeqCst);
            let Some(next) = word::join_users(u) else {
                // Demotion in flight; the demoter changes the word
                // before releasing the core, so re-reading it makes
                // progress.
                return false;
            };
            if core
                .users
                .compare_exchange(u, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            if entry.word.load(Ordering::SeqCst) == word::materialized(idx as usize) {
                return true;
            }
            // The core moved on (demoted, possibly re-promoted for
            // another key) between our read and our increment: undo.
            core.users.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
    }

    /// Give up a participant seat; the last one out demotes the key and
    /// returns the core to the pool.
    fn depart(&self, entry: &Entry<T>, core: &Core<T>, idx: u32) {
        loop {
            let u = core.users.load(Ordering::SeqCst);
            debug_assert!(u != 0 && u != word::USERS_DEMOTING, "departing a dead core");
            if word::may_demote(u) {
                if core
                    .users
                    .compare_exchange(u, word::USERS_DEMOTING, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    // Sole participant ⇒ the core's lock is free (any
                    // holder, waiter, or proxy is a counted user) and
                    // its registry is empty. Word first (joiners
                    // spinning on the sentinel re-read it), then the
                    // counter, then the pool slot.
                    let prev = entry.word.swap(word::UNLOCKED, Ordering::SeqCst);
                    debug_assert_eq!(prev, word::materialized(idx as usize));
                    core.users.store(0, Ordering::SeqCst);
                    self.pool.release(idx);
                    self.demotions.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            } else if core
                .users
                .compare_exchange(u, u - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Release a core hold: evaluate registered conditions under the
    /// lock (unlock-side evaluation, as the mutex does), exit, wake.
    /// Keeps the caller's pid and users seat.
    fn core_exit(&self, entry: &Entry<T>, core: &Core<T>, pid: Pid) {
        if core.ccs.has_waiters() {
            // Safety: we hold the key's lock; the value is stable under
            // the registered conditions.
            let set = core.ccs.evaluate(pid, unsafe { &*entry.data.get() });
            core.lock.exit_core(&core.mem, pid, &NoProbe);
            core.ccs.wake(&set);
        } else {
            core.lock.exit_core(&core.mem, pid, &NoProbe);
        }
        core.wake_enter_waiters();
    }

    /// Full release of a held key in either mode.
    fn unlock(&self, entry: &Entry<T>, mode: Mode) {
        match mode {
            Mode::Inline => {
                if entry
                    .word
                    .compare_exchange(
                        word::LOCKED_INLINE,
                        word::UNLOCKED,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    return;
                }
                // Promoted while we held: our hold is now modelled by
                // the proxy pid — exit through it and give up its seat.
                let w = word::decode(entry.word.load(Ordering::SeqCst));
                let word::WordState::Materialized(idx) = w else {
                    unreachable!("inline hold can only change by promotion, found {w:?}");
                };
                let idx = idx as u32;
                let core = self.pool.get(idx);
                self.core_exit(entry, core, RESERVED);
                self.depart(entry, core, idx);
            }
            Mode::Core { idx, pid } => {
                let core = self.pool.get(idx);
                self.core_exit(entry, core, pid);
                core.pids.release(pid);
                self.depart(entry, core, idx);
            }
        }
    }
}

impl<K, T> fmt::Debug for Arena<K, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("shards", &self.shards.len())
            .field("pool", &self.pool.slots.len())
            .field("built_cores", &self.pool.built.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Exhausted-pool backoff: brief spins, then yields, then short sleeps.
fn backoff_step(step: &mut u32) {
    *step = step.saturating_add(1);
    match *step {
        0..=4 => {
            for _ in 0..(1u32 << *step) {
                std::hint::spin_loop();
            }
        }
        5..=16 => std::thread::yield_now(),
        _ => std::thread::sleep(Duration::from_micros(u64::from((*step - 16).min(6)) * 10)),
    }
}

/// RAII guard over one key's value; the key's lock is held while the
/// guard lives and released (with demotion bookkeeping) on drop.
///
/// Like [`MutexGuard`](crate::MutexGuard): `Sync` only when `T: Sync`,
/// never `Send` (core-mode guards own a checked-out pid seat).
pub struct ArenaGuard<'a, K, T> {
    arena: &'a Arena<K, T>,
    entry: &'a Entry<T>,
    mode: Mode,
    /// Suppresses auto `Send`/`Sync` (see type docs).
    _not_send: PhantomData<*const ()>,
}

// Safety: `&ArenaGuard` only exposes `&T`, so sharing requires exactly
// `T: Sync` (matching std's guard).
unsafe impl<K, T: Sync> Sync for ArenaGuard<'_, K, T> {}

impl<K, T> Deref for ArenaGuard<'_, K, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: we hold the key's lock.
        unsafe { &*self.entry.data.get() }
    }
}

impl<K, T> DerefMut for ArenaGuard<'_, K, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: we hold the key's lock exclusively.
        unsafe { &mut *self.entry.data.get() }
    }
}

impl<K, T> Drop for ArenaGuard<'_, K, T> {
    fn drop(&mut self) {
        self.arena.unlock(self.entry, self.mode);
    }
}

impl<K, T: fmt::Debug> fmt::Debug for ArenaGuard<'_, K, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ArenaGuard").field(&&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AbortFlag;
    use std::sync::Arc;

    #[test]
    fn uncontended_traffic_never_materializes() {
        let arena: Arena<u64, u64> = Arena::builder().shards(4).build();
        for k in 0..100u64 {
            *arena.lock(&k) += 1;
            *arena.lock(&k) += 1;
        }
        let s = arena.stats();
        assert_eq!(s.keys, 100);
        assert_eq!(s.built_cores, 0, "no contention, no cores");
        assert_eq!(s.promotions, 0);
        for k in 0..100u64 {
            assert_eq!(*arena.lock(&k), 2);
        }
    }

    #[test]
    fn contended_key_promotes_and_demotes() {
        let arena: Arc<Arena<u32, u64>> = Arc::new(Arena::builder().shards(2).pool(4).build());
        let start = Arc::new(std::sync::Barrier::new(4));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let arena = Arc::clone(&arena);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    for _ in 0..2000 {
                        *arena.lock(&1) += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*arena.lock(&1), 8000, "no lost updates");
        let s = arena.stats();
        assert_eq!(
            s.resident_cores, 0,
            "quiescent arena has demoted everything"
        );
        assert_eq!(s.promotions, s.demotions, "every promotion reclaimed");
        assert!(s.built_cores <= 4);
    }

    #[test]
    fn try_lock_on_held_inline_key_fails_without_materializing() {
        let arena: Arena<u8, ()> = Arena::new();
        let g = arena.lock(&1);
        assert!(arena.try_lock(&1).is_none());
        assert_eq!(arena.stats().built_cores, 0);
        drop(g);
        assert!(arena.try_lock(&1).is_some());
    }

    #[test]
    fn deadline_abandons_a_held_key() {
        let arena: Arc<Arena<u8, ()>> = Arc::new(Arena::new());
        let g = arena.lock(&1);
        let start = Instant::now();
        let arena2 = Arc::clone(&arena);
        let t = std::thread::spawn(move || {
            arena2.try_lock_for(&1, Duration::from_millis(20)).is_none()
        });
        assert!(t.join().unwrap(), "waiter should time out");
        assert!(start.elapsed() >= Duration::from_millis(20));
        drop(g);
        // The aborted waiter departed: the key demotes once we release.
        assert_eq!(arena.stats().resident_cores, 0);
    }

    #[test]
    fn abort_flag_unblocks_a_queued_waiter() {
        let arena: Arc<Arena<u8, u32>> = Arc::new(Arena::new());
        let flag = AbortFlag::new();
        let g = arena.lock(&3);
        let t = {
            let arena = Arc::clone(&arena);
            let flag = flag.clone();
            std::thread::spawn(move || arena.lock_abortable(&3, &flag).is_none())
        };
        std::thread::sleep(Duration::from_millis(10));
        flag.set();
        assert!(t.join().unwrap(), "waiter should abort");
        drop(g);
        assert_eq!(arena.stats().resident_cores, 0);
    }

    #[test]
    fn lock_when_waits_across_a_transition() {
        let arena: Arc<Arena<u8, u64>> = Arc::new(Arena::new());
        let t = {
            let arena = Arc::clone(&arena);
            std::thread::spawn(move || {
                let g = arena.lock_when(&1, |v| *v == 42);
                *g
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        *arena.lock(&1) = 42;
        assert_eq!(t.join().unwrap(), 42);
        assert_eq!(arena.stats().resident_cores, 0);
    }

    #[test]
    fn lock_when_already_true_stays_inline() {
        let arena: Arena<u8, u64> = Arena::new();
        *arena.lock(&1) = 5;
        let g = arena.lock_when(&1, |v| *v == 5);
        assert_eq!(*g, 5);
        drop(g);
        assert_eq!(arena.stats().built_cores, 0);
    }

    #[test]
    fn lock_when_deadline_expires() {
        let arena: Arena<u8, u64> = Arena::new();
        let r = arena.lock_when_for(&1, |v| *v == 99, Duration::from_millis(15));
        assert_eq!(r.err(), Some(AbortReason::Deadline));
        assert_eq!(arena.stats().resident_cores, 0, "waiter departed cleanly");
    }

    #[test]
    fn distinct_keys_do_not_contend() {
        let arena: Arc<Arena<u64, u64>> = Arc::new(Arena::builder().shards(8).build());
        let threads: Vec<_> = (0..4u64)
            .map(|k| {
                let arena = Arc::clone(&arena);
                std::thread::spawn(move || {
                    for _ in 0..5000 {
                        *arena.lock(&k) += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for k in 0..4u64 {
            assert_eq!(*arena.lock(&k), 5000);
        }
        assert_eq!(arena.stats().built_cores, 0, "disjoint keys stay inline");
    }

    #[test]
    fn pool_of_one_still_correct_under_many_contended_keys() {
        // More concurrently contended keys than pooled cores: the
        // overflow keys take the degraded path; counts must still hold.
        let arena: Arc<Arena<u32, u64>> = Arc::new(Arena::builder().pool(1).build());
        let start = Arc::new(std::sync::Barrier::new(6));
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let arena = Arc::clone(&arena);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    for n in 0..1500u32 {
                        *arena.lock(&(n % 3)) += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: u64 = (0..3u32).map(|k| *arena.lock(&k)).sum();
        assert_eq!(total, 9000);
        let s = arena.stats();
        assert!(s.built_cores <= 1, "pool bound respected");
        assert_eq!(s.resident_cores, 0);
    }

    #[test]
    fn guard_debug_and_arena_debug() {
        let arena: Arena<u8, u64> = Arena::new();
        let g = arena.lock(&1);
        assert!(format!("{g:?}").contains("ArenaGuard"));
        drop(g);
        assert!(format!("{arena:?}").contains("Arena"));
    }
}
