//! [`AsyncAbortableMutex`]: the paper's lock behind poll-based futures,
//! where **dropping a pending lock future runs the bounded abort**.
//!
//! ## Why an async surface fits this lock
//!
//! Abortable mutual exclusion asks: can a waiter abandon its attempt in
//! a bounded number of its own steps? That is exactly the contract
//! future cancellation needs. Rust cancels a future by dropping it —
//! whoever drops a pending `lock()` future (a `select!` arm losing, a
//! timeout firing, a task being torn down) implicitly demands that the
//! waiter leave the lock's queue *now*, without waiting for the lock.
//! Most queue locks cannot do that (their waiters must be handed the
//! lock before they can leave, so cancellation degrades to "acquire,
//! then release"). This lock can: `Drop` resolves the enter machine
//! with the pre-fired [`Immediate`] signal, which runs the paper's
//! abort path — Tree.remove, conditional rescue, Cleanup — in the
//! dropping thread's own bounded number of steps (§4–§6 of the paper;
//! the `tests/async_cancellation.rs` harness measures the ≤ 300-op
//! bound for every possible cancellation point).
//!
//! ## How it is built
//!
//! The sync [`AbortableMutex`] already split the protocol into a
//! sans-IO state machine ([`sal_core::resume::EnterMachine`]) plus a
//! blocking driver. This module is simply a *second driver*: each poll
//! of a lock future advances the machine one step
//! ([`EnterStep::Pending`] ⇒ store a [`Waker`], suspend), and each
//! unlock wakes the suspended enter waiters to re-poll. Three layers:
//!
//! 1. **Pid checkout.** The algorithm needs stable process identities
//!    and is capacity-bounded, but tasks outnumber pids (10 000 tasks
//!    on a 16-pid mutex is the intended shape). A FIFO pid pool hands
//!    each future a pid for the duration of its attempt; futures beyond
//!    the capacity queue on the pool (released pids are granted
//!    directly to the queue head, so admission is FIFO and barge-free).
//! 2. **Enter polling.** With a pid, the future polls the enter
//!    machine. The lost-wakeup race is closed by ordering: the waiter
//!    stores its waker *before* the machine reads its watched go word,
//!    and the unlocker writes the go word (inside `exit`) *before*
//!    collecting wakers — whichever of the two orders the race
//!    resolves to, either the waiter sees the nonzero word or the
//!    unlocker sees the waker.
//! 3. **Unlock broadcast.** The unlocker does not know which pid the
//!    protocol will hand the lock to (that knowledge lives in the
//!    queue's go words), so it wakes every *engaged* enter waiter — a
//!    hint, not a grant; woken waiters whose word is still zero go
//!    straight back to sleep and are counted as
//!    [`AsyncStats::futile_enter_wakeups`].
//!
//! Conditional critical sections ride the sync registry: an async
//! `lock_when` registers its predicate in the same per-pid slot the
//! blocking `lock_when` uses, and unlock-side evaluation fires its
//! waker instead of an unpark. The evaluate-vs-broadcast economics
//! ([`WakePolicy`](crate::WakePolicy)) therefore apply unchanged to
//! tasks — `asyncscale` measures them on the async path.
//!
//! ## Deadline caveat
//!
//! Deadline-bound waits ([`AsyncAbortableMutex::lock_timeout`] etc.)
//! check their deadline when *polled*: while queued in the lock, any
//! unlock wakes them (the signal is then honoured on the bounded abort
//! path), but under **zero lock traffic** nothing polls them — pair
//! the future with a timer (e.g. `sal_runtime::executor::sleep_until`)
//! if expiry must be prompt without traffic. The sync API, which owns
//! its blocked thread, does not have this caveat.
//!
//! ```
//! use sal_runtime::executor::block_on;
//! use sal_sync::AsyncAbortableMutex;
//!
//! let m = AsyncAbortableMutex::builder(0u64).capacity(4).build_async();
//! block_on(async {
//!     *m.lock().await += 1;
//! });
//! assert_eq!(m.into_inner(), 1);
//! ```

// Every unsafe block in the waker/guard plumbing must carry a
// `// Safety:` justification.
#![warn(clippy::undocumented_unsafe_blocks)]

use crate::{deadline_signal, timeout_deadline, AbortableMutex, AbortableMutexBuilder};
use sal_core::resume::{EnterMachine, EnterStep};
use sal_core::{AbortReason, Immediate};
use sal_memory::{AbortSignal, Deadline, NeverAbort, Pid};
use sal_obs::{probed, NoProbe, Probe};
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// A task waiting for a pid. Granted pids are handed to the ticket
/// directly (never parked back in the free list), which keeps admission
/// FIFO; a cancelled ticket is skipped by the grantor.
struct PidTicket {
    state: Mutex<TicketState>,
}

enum TicketState {
    /// In the queue; the waker (if any) is fired on grant.
    Waiting(Option<Waker>),
    /// A releaser handed this ticket a pid; the future consumes it on
    /// its next poll (or releases it from `Drop` if cancelled first).
    Granted(Pid),
    /// Consumed or cancelled — the ticket is dead either way.
    Dead,
}

impl PidTicket {
    /// Take the granted pid if one arrived, else re-arm the waker.
    fn poll_granted(&self, waker: &Waker) -> Option<Pid> {
        let mut st = self.state.lock().unwrap();
        match *st {
            TicketState::Granted(pid) => {
                *st = TicketState::Dead;
                Some(pid)
            }
            TicketState::Waiting(_) => {
                *st = TicketState::Waiting(Some(waker.clone()));
                None
            }
            TicketState::Dead => unreachable!("pid ticket polled after death"),
        }
    }

    /// Cancel from `Drop`; returns a pid that must be put back if the
    /// grant raced the cancellation.
    fn cancel(&self) -> Option<Pid> {
        let mut st = self.state.lock().unwrap();
        match std::mem::replace(&mut *st, TicketState::Dead) {
            TicketState::Granted(pid) => Some(pid),
            TicketState::Waiting(_) | TicketState::Dead => None,
        }
    }
}

/// The pid freelist + FIFO admission queue. Invariant: the free list
/// and the live portion of the queue are never both non-empty (a
/// release grants to the queue head before feeding the free list), so
/// a fresh future popping the free list cannot barge past queued ones.
struct PidPool {
    inner: Mutex<PoolInner>,
}

struct PoolInner {
    free: Vec<Pid>,
    queue: VecDeque<Arc<PidTicket>>,
}

impl PidPool {
    fn new(capacity: usize) -> Self {
        PidPool {
            inner: Mutex::new(PoolInner {
                // Reversed so `pop` hands out pid 0 first (cosmetic).
                free: (0..capacity).rev().collect(),
                queue: VecDeque::new(),
            }),
        }
    }

    /// Non-waiting checkout (`try_lock`).
    fn try_checkout(&self) -> Option<Pid> {
        self.inner.lock().unwrap().free.pop()
    }

    /// Checkout a pid now, or join the admission queue.
    fn checkout_or_enqueue(&self, waker: &Waker) -> Result<Pid, Arc<PidTicket>> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(pid) = inner.free.pop() {
            return Ok(pid);
        }
        let ticket = Arc::new(PidTicket {
            state: Mutex::new(TicketState::Waiting(Some(waker.clone()))),
        });
        inner.queue.push_back(Arc::clone(&ticket));
        Err(ticket)
    }

    /// Return `pid`: granted to the first live queued ticket, else
    /// parked in the free list. The grantee's waker fires outside the
    /// pool lock.
    fn release(&self, pid: Pid) {
        let waker = {
            let mut inner = self.inner.lock().unwrap();
            let mut granted = None;
            while let Some(ticket) = inner.queue.pop_front() {
                let mut st = ticket.state.lock().unwrap();
                match &mut *st {
                    TicketState::Dead => continue,
                    TicketState::Waiting(w) => {
                        let w = w.take();
                        *st = TicketState::Granted(pid);
                        granted = Some(w);
                        break;
                    }
                    TicketState::Granted(_) => {
                        unreachable!("queued ticket already holds a pid")
                    }
                }
            }
            match granted {
                Some(w) => w,
                None => {
                    inner.free.push(pid);
                    None
                }
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    fn free_len(&self) -> usize {
        self.inner.lock().unwrap().free.len()
    }

    fn queued(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner
            .queue
            .iter()
            .filter(|t| matches!(*t.state.lock().unwrap(), TicketState::Waiting(_)))
            .count()
    }
}

/// Per-pid parking slot for a suspended *enter* (lock-queue) waiter.
struct EnterSlot {
    /// A pending enter future is parked on this pid — unlockers should
    /// hint it.
    engaged: AtomicBool,
    /// Set by the unlocker that woke this slot; the waiter swaps it out
    /// to attribute its wake (futile-wakeup accounting).
    hint: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl EnterSlot {
    fn new() -> Self {
        EnterSlot {
            engaged: AtomicBool::new(false),
            hint: AtomicBool::new(false),
            waker: Mutex::new(None),
        }
    }

    fn set_waker(&self, w: &Waker) {
        *self.waker.lock().unwrap() = Some(w.clone());
    }

    fn disengage(&self) {
        self.engaged.store(false, Ordering::SeqCst);
        self.waker.lock().unwrap().take();
    }
}

#[derive(Default)]
struct StatsInner {
    enter_wakeups: AtomicU64,
    futile_enter_wakeups: AtomicU64,
    pid_waits: AtomicU64,
    cancelled_pending: AtomicU64,
}

/// Counters of the async driver, snapshot via
/// [`AsyncAbortableMutex::stats`]. The CCS counters (shared with the
/// sync path) are separate — [`AsyncAbortableMutex::ccs_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// Wakers fired by unlockers at engaged enter waiters (broadcast
    /// hints — compare with `futile_enter_wakeups` for precision).
    pub enter_wakeups: u64,
    /// Hinted waiters whose re-poll still found their go word zero (the
    /// cost of not knowing the queue successor from the unlock side).
    pub futile_enter_wakeups: u64,
    /// Futures that found no free pid and queued for admission.
    pub pid_waits: u64,
    /// Pending enter futures that were dropped — each one ran the
    /// bounded abort (or took a just-granted lock and released it).
    pub cancelled_pending: u64,
    /// Size of the pid pool — the most tasks that can contend *inside*
    /// the lock at once. Tasks beyond this queue for admission.
    pub pool_capacity: usize,
    /// Pids sitting in the free pool at snapshot time. Equals
    /// [`pool_capacity`](Self::pool_capacity) when no attempt or guard
    /// is in flight — the zero-leak check.
    pub free_pids: usize,
    /// Tasks queued for pid admission at snapshot time: the excess of
    /// concurrent attempts over `pool_capacity`. The snapshot is
    /// advisory — attempts keep arriving while it is taken — but a
    /// persistently large value means the pool, not the lock, is the
    /// bottleneck.
    pub queued_tasks: usize,
}

/// An [`AbortableMutex`] driven by futures instead of blocked threads:
/// `lock().await` suspends the task, dropping a pending lock future
/// aborts the attempt on the paper's bounded abort path. See the
/// [module docs](self) for the design.
///
/// Tasks need no per-thread registration (unlike [`AbortableMutex`]'s
/// handles): process identities are checked out from an internal FIFO
/// pool per attempt, so any number of tasks may share the mutex — at
/// most `capacity` of them contend inside the lock at once, the rest
/// queue for admission.
///
/// ```
/// use sal_runtime::executor::Executor;
/// use sal_sync::AsyncAbortableMutex;
/// use std::sync::Arc;
///
/// let m = Arc::new(AsyncAbortableMutex::builder(0u64).capacity(4).build_async());
/// let ex = Executor::new();
/// for _ in 0..100 {
///     let m = Arc::clone(&m);
///     ex.spawn(async move {
///         *m.lock().await += 1;
///     });
/// }
/// ex.run(2);
/// assert_eq!(*Arc::try_unwrap(m).unwrap().get_mut(), 100);
/// ```
pub struct AsyncAbortableMutex<T: ?Sized, P: Probe = NoProbe> {
    pids: PidPool,
    slots: Box<[EnterSlot]>,
    stats: StatsInner,
    m: AbortableMutex<T, P>,
}

impl<T, P: Probe> AbortableMutexBuilder<T, P> {
    /// Build an [`AsyncAbortableMutex`] from this configuration (same
    /// capacity / branching / wake-policy / probe knobs as
    /// [`build`](Self::build)).
    pub fn build_async(self) -> AsyncAbortableMutex<T, P> {
        let m = self.build();
        AsyncAbortableMutex {
            pids: PidPool::new(m.capacity()),
            slots: (0..m.capacity()).map(|_| EnterSlot::new()).collect(),
            stats: StatsInner::default(),
            m,
        }
    }
}

impl<T> AsyncAbortableMutex<T> {
    /// Start configuring: returns the common [`AbortableMutexBuilder`];
    /// finish with [`build_async`](AbortableMutexBuilder::build_async).
    pub fn builder(value: T) -> AbortableMutexBuilder<T> {
        AbortableMutex::builder(value)
    }

    /// An async mutex with default capacity and branching.
    pub fn new(value: T) -> Self {
        Self::builder(value).build_async()
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.m.into_inner()
    }
}

impl<T: ?Sized, P: Probe> AsyncAbortableMutex<T, P> {
    /// Acquire the lock, suspending the task while waiting. Dropping
    /// the returned future before completion cancels the attempt in a
    /// bounded number of steps (module docs).
    pub fn lock(&self) -> LockFuture<'_, T, P> {
        LockFuture {
            inner: self.lock_abortable_impl(NeverAbort, AbortReason::Caller),
        }
    }

    /// [`lock`](Self::lock) with caller-side cancellation: resolves to
    /// [`AbortReason::Caller`] once `signal` fires (share an
    /// [`AbortFlag`](crate::AbortFlag) clone with a controller task).
    /// Dropping the future remains the other, always-available way to
    /// cancel.
    pub fn lock_abortable<S: AbortSignal>(&self, signal: S) -> TryLockFuture<'_, T, P, S> {
        self.lock_abortable_impl(signal, AbortReason::Caller)
    }

    /// [`lock`](Self::lock) bounded by an absolute deadline; resolves
    /// to [`AbortReason::Deadline`] on expiry. See the module docs for
    /// the zero-traffic caveat on async deadlines.
    pub fn lock_deadline(&self, deadline: Instant) -> TryLockFuture<'_, T, P, Deadline> {
        self.lock_abortable_impl(deadline_signal(deadline), AbortReason::Deadline)
    }

    /// [`lock_deadline`](Self::lock_deadline) with a relative timeout.
    pub fn lock_timeout(&self, timeout: Duration) -> TryLockFuture<'_, T, P, Deadline> {
        self.lock_deadline(timeout_deadline(timeout))
    }

    fn lock_abortable_impl<S: AbortSignal>(
        &self,
        signal: S,
        reason: AbortReason,
    ) -> TryLockFuture<'_, T, P, S> {
        TryLockFuture {
            mx: self,
            signal,
            reason,
            st: Acquire::Fresh,
        }
    }

    /// One near-immediate attempt, synchronously: `None` if the lock is
    /// held *or* all pids are checked out by in-flight futures.
    pub fn try_lock(&self) -> Option<AsyncMutexGuard<'_, T, P>> {
        let pid = self.pids.try_checkout()?;
        let mut machine = self.m.lock.begin_enter();
        self.m.probe.enter_begin(pid);
        loop {
            let step = {
                let pm = probed(&self.m.mem, &self.m.probe);
                self.m
                    .lock
                    .poll_enter(&mut machine, &pm, pid, &Immediate, &self.m.probe)
            };
            match step {
                EnterStep::Acquired { .. } => {
                    self.m.probe.enter_end(pid, None);
                    return Some(self.guard(pid));
                }
                EnterStep::Aborted { .. } => {
                    self.m.probe.abort(pid, None);
                    self.pids.release(pid);
                    return None;
                }
                // Unreachable under Immediate; re-poll defensively.
                EnterStep::Pending(_) => {}
            }
        }
    }

    /// Acquire the lock *when `pred` holds over the protected value* —
    /// the async conditional critical section. Same contract as the
    /// sync [`lock_when`](crate::MutexHandle::lock_when): `pred` runs
    /// under the lock, on other tasks' unlock paths too (hence `Sync`),
    /// and on completion `pred(&*guard)` is true.
    pub fn lock_when<F>(&self, pred: F) -> LockWhenFuture<'_, T, F, P>
    where
        F: Fn(&T) -> bool + Sync,
    {
        LockWhenFuture {
            inner: self.lock_when_impl(pred, NeverAbort, AbortReason::Caller),
        }
    }

    /// [`lock_when`](Self::lock_when) with caller-side cancellation.
    pub fn lock_when_abortable<F, S>(&self, pred: F, signal: S) -> TryLockWhenFuture<'_, T, F, P, S>
    where
        F: Fn(&T) -> bool + Sync,
        S: AbortSignal,
    {
        self.lock_when_impl(pred, signal, AbortReason::Caller)
    }

    /// [`lock_when`](Self::lock_when) bounded by an absolute deadline
    /// (module docs: under zero lock traffic expiry is only noticed
    /// when the future is next polled).
    pub fn lock_when_deadline<F>(
        &self,
        pred: F,
        deadline: Instant,
    ) -> TryLockWhenFuture<'_, T, F, P, Deadline>
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.lock_when_impl(pred, deadline_signal(deadline), AbortReason::Deadline)
    }

    /// [`lock_when_deadline`](Self::lock_when_deadline) with a relative
    /// timeout.
    pub fn lock_when_timeout<F>(
        &self,
        pred: F,
        timeout: Duration,
    ) -> TryLockWhenFuture<'_, T, F, P, Deadline>
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.lock_when_deadline(pred, timeout_deadline(timeout))
    }

    fn lock_when_impl<F, S>(
        &self,
        pred: F,
        signal: S,
        reason: AbortReason,
    ) -> TryLockWhenFuture<'_, T, F, P, S>
    where
        F: Fn(&T) -> bool + Sync,
        S: AbortSignal,
    {
        TryLockWhenFuture {
            mx: self,
            pred: Box::new(pred),
            signal,
            reason,
            st: WhenState::Acquire(Acquire::Fresh),
            woken: false,
        }
    }

    /// Number of tasks this mutex admits into the lock at once (the
    /// underlying capacity; further tasks queue for admission).
    pub fn capacity(&self) -> usize {
        self.m.capacity()
    }

    /// Shared memory words the lock occupies.
    pub fn shared_words(&self) -> usize {
        self.m.shared_words()
    }

    /// The attached probe sink.
    pub fn probe(&self) -> &P {
        self.m.probe()
    }

    /// The configured [`WakePolicy`](crate::WakePolicy) for conditional
    /// waiters.
    pub fn wake_policy(&self) -> crate::WakePolicy {
        self.m.wake_policy()
    }

    /// Tasks currently registered in a conditional wait.
    pub fn waiters(&self) -> usize {
        self.m.waiters()
    }

    /// Snapshot of the conditional-critical-section counters (shared
    /// with the sync path; see [`CcsStats`](crate::CcsStats)).
    pub fn ccs_stats(&self) -> crate::CcsStats {
        self.m.ccs_stats()
    }

    /// Snapshot of the async driver counters.
    pub fn stats(&self) -> AsyncStats {
        AsyncStats {
            enter_wakeups: self.stats.enter_wakeups.load(Ordering::Relaxed),
            futile_enter_wakeups: self.stats.futile_enter_wakeups.load(Ordering::Relaxed),
            pid_waits: self.stats.pid_waits.load(Ordering::Relaxed),
            cancelled_pending: self.stats.cancelled_pending.load(Ordering::Relaxed),
            pool_capacity: self.m.capacity(),
            free_pids: self.pids.free_len(),
            queued_tasks: self.pids.queued(),
        }
    }

    /// Pids currently in the free pool. Equals
    /// [`capacity`](Self::capacity) when no attempt or guard is in
    /// flight — the leak check the cancellation tests assert after
    /// storms.
    pub fn free_pids(&self) -> usize {
        self.pids.free_len()
    }

    /// Tasks queued for pid admission right now.
    pub fn queued_tasks(&self) -> usize {
        self.pids.queued()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.m.get_mut()
    }

    fn guard(&self, pid: Pid) -> AsyncMutexGuard<'_, T, P> {
        AsyncMutexGuard {
            mx: self,
            pid,
            _marker: PhantomData,
        }
    }

    /// Start a passage: lifecycle hook + fresh machine.
    fn start_enter(&self, pid: Pid) -> Acquire {
        self.m.probe.enter_begin(pid);
        Acquire::Enter {
            pid,
            machine: self.m.lock.begin_enter(),
        }
    }

    /// Release the lock held by `pid` but keep the pid checked out
    /// (conditional waits park with their pid — the CCS registry slot
    /// is theirs).
    fn unlock_keep_pid(&self, pid: Pid) {
        self.m.unlock_with_eval(pid);
        self.wake_enter_waiters();
    }

    /// Full unlock: release the lock, hint enter waiters, return the
    /// pid to the pool.
    fn unlock_async(&self, pid: Pid) {
        self.unlock_keep_pid(pid);
        self.pids.release(pid);
    }

    /// Broadcast a hint to every engaged enter waiter — the unlock side
    /// of the no-lost-wakeup protocol (module docs §3).
    fn wake_enter_waiters(&self) {
        for slot in self.slots.iter() {
            if slot.engaged.load(Ordering::SeqCst) {
                slot.hint.store(true, Ordering::SeqCst);
                let w = slot.waker.lock().unwrap().take();
                if let Some(w) = w {
                    self.stats.enter_wakeups.fetch_add(1, Ordering::Relaxed);
                    w.wake();
                }
            }
        }
    }
}

impl<T: ?Sized, P: Probe> fmt::Debug for AsyncAbortableMutex<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncAbortableMutex")
            .field("capacity", &self.capacity())
            .field("free_pids", &self.free_pids())
            .field("queued_tasks", &self.queued_tasks())
            .finish_non_exhaustive()
    }
}

impl<T: Default> Default for AsyncAbortableMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for AsyncAbortableMutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// Progress of one acquisition attempt — the shared core of every lock
/// future in this module.
enum Acquire {
    /// Not yet polled: no pid, no shared-memory footprint.
    Fresh,
    /// Queued for pid admission.
    PidWait(Arc<PidTicket>),
    /// Holding `pid`, driving the enter machine; `Drop` from this state
    /// is the bounded-abort obligation.
    Enter { pid: Pid, machine: EnterMachine },
    /// Resolved (guard handed out, aborted, or cancelled).
    Done,
}

/// Advance an acquisition by one poll. `Ready(Ok(pid))` means the lock
/// is held by `pid` (the caller wraps it in a guard); `Ready(Err)`
/// means the attempt aborted and the pid is already released.
fn poll_acquire<T, P, S>(
    mx: &AsyncAbortableMutex<T, P>,
    st: &mut Acquire,
    signal: &S,
    reason: AbortReason,
    cx: &mut Context<'_>,
) -> Poll<Result<Pid, AbortReason>>
where
    T: ?Sized,
    P: Probe,
    S: AbortSignal + ?Sized,
{
    loop {
        match st {
            Acquire::Fresh => match mx.pids.checkout_or_enqueue(cx.waker()) {
                Ok(pid) => *st = mx.start_enter(pid),
                Err(ticket) => {
                    mx.stats.pid_waits.fetch_add(1, Ordering::Relaxed);
                    *st = Acquire::PidWait(ticket);
                    return Poll::Pending;
                }
            },
            Acquire::PidWait(ticket) => match ticket.poll_granted(cx.waker()) {
                Some(pid) => *st = mx.start_enter(pid),
                None => return Poll::Pending,
            },
            Acquire::Enter { pid, machine } => {
                let pid = *pid;
                let slot = &mx.slots[pid];
                let hinted = slot.hint.swap(false, Ordering::SeqCst);
                // Waker before machine poll: the machine's Pending read
                // of its go word must come after the waker is visible,
                // so an unlock can never fall between "observed zero"
                // and "parked" (module docs §2).
                slot.engaged.store(true, Ordering::SeqCst);
                slot.set_waker(cx.waker());
                let step = {
                    let pm = probed(&mx.m.mem, &mx.m.probe);
                    mx.m.lock.poll_enter(machine, &pm, pid, signal, &mx.m.probe)
                };
                match step {
                    EnterStep::Acquired { .. } => {
                        slot.disengage();
                        mx.m.probe.enter_end(pid, None);
                        *st = Acquire::Done;
                        return Poll::Ready(Ok(pid));
                    }
                    EnterStep::Aborted { .. } => {
                        slot.disengage();
                        mx.m.probe.abort(pid, None);
                        mx.pids.release(pid);
                        *st = Acquire::Done;
                        return Poll::Ready(Err(reason));
                    }
                    EnterStep::Pending(_) => {
                        if hinted {
                            mx.stats
                                .futile_enter_wakeups
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        return Poll::Pending;
                    }
                }
            }
            Acquire::Done => panic!("lock future polled after completion"),
        }
    }
}

/// Resolve a dropped attempt: cancellation = the paper's abort. With
/// the pre-fired [`Immediate`] signal one poll either acquires (the
/// lock was handed over in the race window — release it) or runs the
/// complete abort path; both are bounded in the dropping task's steps.
fn drop_acquire<T, P>(mx: &AsyncAbortableMutex<T, P>, st: &mut Acquire)
where
    T: ?Sized,
    P: Probe,
{
    match std::mem::replace(st, Acquire::Done) {
        Acquire::Fresh | Acquire::Done => {}
        Acquire::PidWait(ticket) => {
            if let Some(pid) = ticket.cancel() {
                mx.pids.release(pid);
            }
        }
        Acquire::Enter { pid, mut machine } => {
            let slot = &mx.slots[pid];
            slot.disengage();
            slot.hint.store(false, Ordering::SeqCst);
            mx.stats.cancelled_pending.fetch_add(1, Ordering::Relaxed);
            loop {
                let step = {
                    let pm = probed(&mx.m.mem, &mx.m.probe);
                    mx.m.lock
                        .poll_enter(&mut machine, &pm, pid, &Immediate, &mx.m.probe)
                };
                match step {
                    EnterStep::Acquired { .. } => {
                        mx.m.probe.enter_end(pid, None);
                        mx.unlock_keep_pid(pid);
                        break;
                    }
                    EnterStep::Aborted { .. } => {
                        mx.m.probe.abort(pid, None);
                        break;
                    }
                    // Unreachable under Immediate; re-poll defensively.
                    EnterStep::Pending(_) => {}
                }
            }
            mx.pids.release(pid);
        }
    }
}

/// Future of [`AsyncAbortableMutex::lock`]. Dropping it while pending
/// cancels the attempt (bounded abort).
pub struct LockFuture<'a, T: ?Sized, P: Probe = NoProbe> {
    inner: TryLockFuture<'a, T, P, NeverAbort>,
}

impl<'a, T: ?Sized, P: Probe> Future for LockFuture<'a, T, P> {
    type Output = AsyncMutexGuard<'a, T, P>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.inner)
            .poll(cx)
            .map(|r| r.expect("non-abortable lock cannot fail"))
    }
}

impl<T: ?Sized, P: Probe> fmt::Debug for LockFuture<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFuture").finish_non_exhaustive()
    }
}

/// Future of the abortable/deadline lock methods. Resolves to `Err`
/// with the originating method's [`AbortReason`] if the signal ends the
/// attempt; dropping it while pending cancels like [`LockFuture`].
pub struct TryLockFuture<'a, T: ?Sized, P: Probe = NoProbe, S: AbortSignal = Deadline> {
    mx: &'a AsyncAbortableMutex<T, P>,
    signal: S,
    reason: AbortReason,
    st: Acquire,
}

impl<'a, T: ?Sized, P: Probe, S: AbortSignal + Unpin> Future for TryLockFuture<'a, T, P, S> {
    type Output = Result<AsyncMutexGuard<'a, T, P>, AbortReason>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        poll_acquire(this.mx, &mut this.st, &this.signal, this.reason, cx)
            .map(|r| r.map(|pid| this.mx.guard(pid)))
    }
}

impl<T: ?Sized, P: Probe, S: AbortSignal> Drop for TryLockFuture<'_, T, P, S> {
    fn drop(&mut self) {
        drop_acquire(self.mx, &mut self.st);
    }
}

impl<T: ?Sized, P: Probe, S: AbortSignal> fmt::Debug for TryLockFuture<'_, T, P, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TryLockFuture").finish_non_exhaustive()
    }
}

/// Progress of a conditional acquisition.
enum WhenState {
    /// (Re-)acquiring the lock to check the predicate.
    Acquire(Acquire),
    /// Predicate registered in the CCS slot of `pid`, lock released,
    /// waiting for an unlocker's evaluation to fire our waker.
    CondWait { pid: Pid },
    /// Resolved.
    Done,
}

/// Future of [`AsyncAbortableMutex::lock_when`] (via the unbounded
/// wrapper) and its abortable/deadline variants. The predicate lives in
/// a `Box` inside the future so the pointer registered with the CCS
/// slot stays valid even if the future is leaked mid-wait.
pub struct TryLockWhenFuture<'a, T: ?Sized, F, P: Probe = NoProbe, S: AbortSignal = Deadline> {
    mx: &'a AsyncAbortableMutex<T, P>,
    pred: Box<F>,
    signal: S,
    reason: AbortReason,
    st: WhenState,
    /// Whether the last cond-wait ended in a notification (futile-wake
    /// accounting parity with the sync path).
    woken: bool,
}

impl<'a, T, F, P, S> Future for TryLockWhenFuture<'a, T, F, P, S>
where
    T: ?Sized,
    F: Fn(&T) -> bool + Sync + Unpin,
    P: Probe,
    S: AbortSignal + Unpin,
{
    type Output = Result<AsyncMutexGuard<'a, T, P>, AbortReason>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        loop {
            match &mut this.st {
                WhenState::Acquire(acq) => {
                    let pid = match poll_acquire(this.mx, acq, &this.signal, this.reason, cx) {
                        Poll::Pending => return Poll::Pending,
                        Poll::Ready(Err(r)) => {
                            this.st = WhenState::Done;
                            return Poll::Ready(Err(r));
                        }
                        Poll::Ready(Ok(pid)) => pid,
                    };
                    // Safety: we hold the lock, so the protected value
                    // is stable under the predicate.
                    if (this.pred)(unsafe { &*this.mx.m.data.get() }) {
                        this.st = WhenState::Done;
                        return Poll::Ready(Ok(this.mx.guard(pid)));
                    }
                    if this.woken {
                        this.mx.m.ccs.note_futile();
                    }
                    if this.signal.is_set() {
                        this.mx.unlock_async(pid);
                        this.st = WhenState::Done;
                        return Poll::Ready(Err(this.reason));
                    }
                    // Register under the lock (no transition can be
                    // missed), park the waker, then release.
                    this.mx.m.ccs.register(pid, &*this.pred);
                    this.mx.m.ccs.set_waker(pid, cx.waker());
                    this.mx.m.ccs.note_wait();
                    this.mx.unlock_keep_pid(pid);
                    this.st = WhenState::CondWait { pid };
                    return Poll::Pending;
                }
                WhenState::CondWait { pid } => {
                    let pid = *pid;
                    this.woken = this.mx.m.ccs.deregister(pid);
                    this.st = WhenState::Acquire(this.mx.start_enter(pid));
                    // Fall through: re-acquire within this poll.
                }
                WhenState::Done => panic!("lock_when future polled after completion"),
            }
        }
    }
}

impl<T: ?Sized, F, P: Probe, S: AbortSignal> Drop for TryLockWhenFuture<'_, T, F, P, S> {
    fn drop(&mut self) {
        match std::mem::replace(&mut self.st, WhenState::Done) {
            WhenState::Acquire(mut acq) => drop_acquire(self.mx, &mut acq),
            WhenState::CondWait { pid } => {
                self.mx.m.ccs.deregister(pid);
                self.mx.pids.release(pid);
            }
            WhenState::Done => {}
        }
    }
}

impl<T: ?Sized, F, P: Probe, S: AbortSignal> fmt::Debug for TryLockWhenFuture<'_, T, F, P, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TryLockWhenFuture").finish_non_exhaustive()
    }
}

/// Future of [`AsyncAbortableMutex::lock_when`]: unbounded, resolves to
/// the guard with the predicate true.
pub struct LockWhenFuture<'a, T: ?Sized, F, P: Probe = NoProbe> {
    inner: TryLockWhenFuture<'a, T, F, P, NeverAbort>,
}

impl<'a, T, F, P> Future for LockWhenFuture<'a, T, F, P>
where
    T: ?Sized,
    F: Fn(&T) -> bool + Sync + Unpin,
    P: Probe,
{
    type Output = AsyncMutexGuard<'a, T, P>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.inner)
            .poll(cx)
            .map(|r| r.expect("unbounded lock_when cannot fail"))
    }
}

impl<T: ?Sized, F, P: Probe> fmt::Debug for LockWhenFuture<'_, T, F, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockWhenFuture").finish_non_exhaustive()
    }
}

/// RAII guard of the async mutex: the lock is held while the guard
/// lives, released (with unlock-side condition evaluation and enter-
/// waiter hints) on drop.
///
/// Unlike the sync [`MutexGuard`](crate::MutexGuard), this guard is
/// `Send` (for `T: Send`): the process identity is carried explicitly
/// in the guard rather than through a thread-affine handle, and the
/// algorithm keys all per-process state by pid, so an executor may
/// resume the holding task — and hence drop the guard — on any worker
/// thread.
pub struct AsyncMutexGuard<'a, T: ?Sized, P: Probe = NoProbe> {
    mx: &'a AsyncAbortableMutex<T, P>,
    pid: Pid,
    /// Suppresses the auto `Send`/`Sync` impls so the manual ones below
    /// carry exactly the right bounds.
    _marker: PhantomData<*const ()>,
}

// Safety: the guard is morally an `&mut T` plus pid-keyed lock
// bookkeeping; the algorithm is indifferent to which OS thread performs
// a pid's operations, so moving the guard across threads requires
// exactly `T: Send`.
unsafe impl<T: ?Sized + Send, P: Probe> Send for AsyncMutexGuard<'_, T, P> {}
// Safety: `&AsyncMutexGuard<T>` exposes only `&T` (plus thread-safe
// bookkeeping), so sharing requires exactly `T: Sync`.
unsafe impl<T: ?Sized + Sync, P: Probe> Sync for AsyncMutexGuard<'_, T, P> {}

impl<T: ?Sized, P: Probe> Deref for AsyncMutexGuard<'_, T, P> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: we hold the lock.
        unsafe { &*self.mx.m.data.get() }
    }
}

impl<T: ?Sized, P: Probe> DerefMut for AsyncMutexGuard<'_, T, P> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: we hold the lock exclusively.
        unsafe { &mut *self.mx.m.data.get() }
    }
}

impl<T: ?Sized, P: Probe> Drop for AsyncMutexGuard<'_, T, P> {
    fn drop(&mut self) {
        self.mx.unlock_async(self.pid);
    }
}

impl<T: ?Sized + fmt::Debug, P: Probe> fmt::Debug for AsyncMutexGuard<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AsyncMutexGuard").field(&&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::task::{RawWaker, RawWakerVTable, Waker};

    /// A waker that counts its wakes (enough to drive futures by hand).
    fn counting_waker(count: &'static AtomicUsize) -> Waker {
        fn vt() -> &'static RawWakerVTable {
            &RawWakerVTable::new(
                |d| RawWaker::new(d, vt()),
                |d| {
                    // Safety: `d` is the `&'static AtomicUsize` stored
                    // by `counting_waker`; it is never deallocated.
                    unsafe { &*d.cast::<AtomicUsize>() }.fetch_add(1, Ordering::SeqCst);
                },
                |d| {
                    // Safety: as above.
                    unsafe { &*d.cast::<AtomicUsize>() }.fetch_add(1, Ordering::SeqCst);
                },
                |_| {},
            )
        }
        let raw = RawWaker::new((count as *const AtomicUsize).cast(), vt());
        // Safety: the vtable functions only touch the leaked static.
        unsafe { Waker::from_raw(raw) }
    }

    fn poll_once<F: Future + Unpin>(fut: &mut F, w: &Waker) -> Poll<F::Output> {
        Pin::new(fut).poll(&mut Context::from_waker(w))
    }

    static WAKES: AtomicUsize = AtomicUsize::new(0);

    #[test]
    fn uncontended_lock_resolves_on_first_poll() {
        let m = AsyncAbortableMutex::builder(5u64).capacity(2).build_async();
        let w = counting_waker(&WAKES);
        let mut fut = m.lock();
        match poll_once(&mut fut, &w) {
            Poll::Ready(mut g) => *g += 1,
            Poll::Pending => panic!("uncontended lock should resolve immediately"),
        }
        drop(fut);
        assert_eq!(m.free_pids(), 2);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn contended_lock_parks_and_release_wakes() {
        static CONTEND_WAKES: AtomicUsize = AtomicUsize::new(0);
        let m = AsyncAbortableMutex::builder(0u64).capacity(2).build_async();
        let w = counting_waker(&WAKES);
        let g = m.try_lock().expect("uncontended");
        let mut fut = m.lock();
        let cw = counting_waker(&CONTEND_WAKES);
        assert!(poll_once(&mut fut, &cw).is_pending());
        assert_eq!(CONTEND_WAKES.load(Ordering::SeqCst), 0);
        drop(g); // must hint the parked waiter
        assert!(CONTEND_WAKES.load(Ordering::SeqCst) >= 1);
        match poll_once(&mut fut, &w) {
            Poll::Ready(mut g2) => *g2 += 1,
            Poll::Pending => panic!("woken waiter should acquire"),
        }
        drop(fut);
        assert_eq!(m.stats().enter_wakeups, 1);
        assert_eq!(m.into_inner(), 1);
    }

    #[test]
    fn dropping_a_pending_future_aborts_and_frees_the_pid() {
        let m = AsyncAbortableMutex::builder(()).capacity(3).build_async();
        let w = counting_waker(&WAKES);
        let g = m.try_lock().expect("uncontended");
        let mut fut = m.lock();
        assert!(poll_once(&mut fut, &w).is_pending());
        assert_eq!(m.free_pids(), 1);
        drop(fut); // cancellation = bounded abort
        assert_eq!(m.free_pids(), 2);
        assert_eq!(m.stats().cancelled_pending, 1);
        drop(g);
        assert_eq!(m.free_pids(), 3);
        // The mutex still works.
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn pid_exhaustion_queues_tasks_fifo() {
        let m = AsyncAbortableMutex::builder(0u32).capacity(1).build_async();
        let w = counting_waker(&WAKES);
        let g = m.try_lock().expect("takes the only pid");
        let mut fut = m.lock();
        assert!(poll_once(&mut fut, &w).is_pending());
        assert_eq!(m.queued_tasks(), 1);
        assert_eq!(m.stats().pid_waits, 1);
        drop(g); // hands the pid to the queued future
        match poll_once(&mut fut, &w) {
            Poll::Ready(mut g2) => *g2 += 1,
            Poll::Pending => panic!("granted pid should let the waiter in"),
        }
        drop(fut);
        assert_eq!(m.queued_tasks(), 0);
        assert_eq!(m.into_inner(), 1);
    }

    #[test]
    fn stats_snapshot_pool_occupancy_with_tasks_beyond_capacity() {
        // 1 holder + 1 in-lock waiter exhaust a capacity-2 pool; six
        // more suspended attempts sit in the admission queue. The
        // occupancy snapshot must see all of it.
        let m = AsyncAbortableMutex::builder(0u32).capacity(2).build_async();
        let w = counting_waker(&WAKES);
        let g = m.try_lock().expect("uncontended");
        let mut futs: Vec<_> = (0..7).map(|_| m.lock()).collect();
        for fut in &mut futs {
            assert!(poll_once(fut, &w).is_pending());
        }
        let s = m.stats();
        assert_eq!(s.pool_capacity, 2);
        assert_eq!(s.free_pids, 0, "holder + one waiter own both pids");
        assert_eq!(s.queued_tasks, 6, "excess attempts queue for admission");
        drop(futs);
        drop(g);
        let s = m.stats();
        assert_eq!(s.free_pids, s.pool_capacity, "no pid leaked");
        assert_eq!(s.queued_tasks, 0);
    }

    #[test]
    fn deadline_future_errs_once_expired() {
        let m = AsyncAbortableMutex::builder(()).capacity(2).build_async();
        let w = counting_waker(&WAKES);
        let g = m.try_lock().expect("uncontended");
        let mut fut = m.lock_timeout(Duration::from_millis(5));
        assert!(poll_once(&mut fut, &w).is_pending());
        std::thread::sleep(Duration::from_millis(10));
        match poll_once(&mut fut, &w) {
            Poll::Ready(Err(AbortReason::Deadline)) => {}
            other => panic!("expected deadline abort, got {other:?}"),
        }
        drop(g);
        assert_eq!(m.free_pids(), 2);
    }

    #[test]
    fn abort_flag_cancels_a_parked_future() {
        let m = AsyncAbortableMutex::builder(()).capacity(2).build_async();
        let w = counting_waker(&WAKES);
        let g = m.try_lock().expect("uncontended");
        let flag = crate::AbortFlag::new();
        let mut fut = m.lock_abortable(flag.clone());
        assert!(poll_once(&mut fut, &w).is_pending());
        flag.set();
        match poll_once(&mut fut, &w) {
            Poll::Ready(Err(AbortReason::Caller)) => {}
            other => panic!("expected caller abort, got {other:?}"),
        }
        drop(g);
    }

    #[test]
    fn lock_when_waits_for_the_predicate() {
        let m = AsyncAbortableMutex::builder(0u32).capacity(2).build_async();
        let w = counting_waker(&WAKES);
        let mut fut = m.lock_when(|v: &u32| *v >= 3);
        assert!(poll_once(&mut fut, &w).is_pending());
        assert_eq!(m.waiters(), 1);
        // Two transitions that don't satisfy it, one that does.
        for _ in 0..3 {
            let mut g = m.try_lock().expect("lock free while waiter parked");
            *g += 1;
        }
        match poll_once(&mut fut, &w) {
            Poll::Ready(g) => assert_eq!(*g, 3),
            Poll::Pending => panic!("satisfied predicate should admit the waiter"),
        }
        assert_eq!(m.waiters(), 0);
    }

    #[test]
    fn dropping_a_cond_waiter_deregisters_and_frees_the_pid() {
        let m = AsyncAbortableMutex::builder(0u32).capacity(2).build_async();
        let w = counting_waker(&WAKES);
        let mut fut = m.lock_when(|v: &u32| *v > 0);
        assert!(poll_once(&mut fut, &w).is_pending());
        assert_eq!((m.waiters(), m.free_pids()), (1, 1));
        drop(fut);
        assert_eq!((m.waiters(), m.free_pids()), (0, 2));
    }

    #[test]
    fn guard_is_send_and_futures_are_send() {
        fn assert_send<X: Send>() {}
        assert_send::<AsyncMutexGuard<'static, u64>>();
        assert_send::<LockFuture<'static, u64>>();
        assert_send::<TryLockFuture<'static, u64>>();
        assert_send::<AsyncAbortableMutex<u64>>();
    }
}
