//! Conditional critical sections: the waiter registry and the
//! unlock-side condition evaluation behind [`lock_when`] and friends.
//!
//! [`lock_when`]: crate::MutexHandle::lock_when
//!
//! ## The wakeup-storm problem
//!
//! The naive way to build `lock_when(pred)` over a mutex is: acquire,
//! check `pred`, and if false, release and have every unlock broadcast
//! to all waiters, each of which re-acquires and re-checks. One state
//! transition then costs `O(waiters)` wakeups and re-acquisitions even
//! when it can satisfy only one of them — Scott & Scherer's wakeup
//! storm, quadratic total work for a pipeline draining through a
//! condition.
//!
//! ## Unlock-side evaluation (nsync/abseil style)
//!
//! Instead, each waiter registers its *condition* next to its parking
//! slot, and the **unlocker** — who at that instant holds the lock and
//! therefore sees a stable protected value — evaluates the registered
//! conditions and wakes exactly the waiters whose condition currently
//! holds. All satisfiable waiters are woken (not just one): a wakeup is
//! only a *hint* (the woken waiter re-acquires and re-checks), so
//! dropping one — e.g. a timeout racing a wakeup — is harmless as long
//! as every waiter whose condition held got its own token.
//!
//! ## The registry
//!
//! One slot per registered handle (pid), so registration is index-based
//! and allocation-free. Each slot is a tiny state machine:
//!
//! ```text
//!  VACANT ──register (holding the lock)──▶ WAITING
//!  WAITING ──unlocker CAS──▶ EVALUATING ──cond false──▶ WAITING
//!                                │ cond true
//!                                ▼
//!                            NOTIFIED ──waiter deregister──▶ VACANT
//!  WAITING ──waiter deregister (timeout/cancel)──▶ VACANT
//! ```
//!
//! * `register` runs while *holding* the lock, so no state transition
//!   can be missed: any future unlock happens-after the registration.
//! * The unlocker evaluates under the lock, collects the satisfied
//!   waiters into a stack-allocated `WakeSet`, releases the lock
//!   (`exit_core` — the bounded-RMR paper path), and only then unparks,
//!   so woken waiters never stampede into a still-held lock.
//! * A waiter deregistering concurrently with an evaluation spins the
//!   few instructions until the evaluator leaves its slot; the stored
//!   condition pointer is therefore never dereferenced after
//!   deregistration returns (this is what makes the borrowed-closure
//!   registration sound — see `Slot::cond`).
//!
//! Fairness caveat: conditions are evaluated in pid order and all
//! satisfiable waiters race to re-acquire through the lock's normal
//! entry protocol; the registry adds no ordering of its own (DESIGN.md
//! §11 discusses the implications).

use crate::AbortableMutex;
use sal_core::park::{ParkResult, Waiter};
use sal_core::{AbortReason, LockCore};
use sal_memory::{AbortSignal, NeverAbort, Pid};
use sal_obs::Probe;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::task::Waker;
use std::time::{Duration, Instant};

/// Slot states — see the module docs for the transition diagram.
const VACANT: u8 = 0;
const WAITING: u8 = 1;
const EVALUATING: u8 = 2;
const NOTIFIED: u8 = 3;

/// Ceiling on registry slots; the lock algorithm's descriptor limit is
/// 1022 processes, so 16 × 64 bits always suffice for a `WakeSet`.
const MAX_SLOTS: usize = 1024;

/// How often a wait limited by an arbitrary caller signal re-polls the
/// signal while parked (deadline-limited waits park exactly until the
/// deadline and need no polling).
const SIGNAL_POLL: Duration = Duration::from_micros(100);

/// A registered condition as stored: a borrowed closure over the
/// protected value, its lifetime erased to `'static` for storage (see
/// `Slot::cond` safety note — the protocol confines every dereference
/// to the real borrow's lifetime).
type StoredCond<T> = *const (dyn Fn(&T) -> bool + 'static);

/// How unlocks treat registered waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WakePolicy {
    /// Evaluate each registered condition under the lock at unlock and
    /// wake only the satisfiable waiters (the default, and the point of
    /// the design).
    #[default]
    Evaluate,
    /// Wake every registered waiter on every unlock without looking at
    /// conditions — the classic broadcast condition variable. Kept as
    /// the measured baseline (`ccsscale` quantifies the wakeup storm);
    /// behaviour is identical, only wakeup counts differ.
    Broadcast,
}

/// Counters of the conditional-critical-section machinery, snapshot via
/// [`AbortableMutex::ccs_stats`].
///
/// The headline ratio is `wakeups / transitions` — how many waiters one
/// state transition wakes. Unlock-side evaluation keeps it at the
/// number of *satisfiable* waiters; broadcast pays one per *registered*
/// waiter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcsStats {
    /// Unparks issued by unlockers.
    pub wakeups: u64,
    /// Unlocks that scanned a non-empty registry (state transitions
    /// observable by waiters).
    pub transitions: u64,
    /// Conditions evaluated by unlockers (0 under
    /// [`WakePolicy::Broadcast`]).
    pub evaluated: u64,
    /// Park episodes taken by waiters.
    pub waits: u64,
    /// Wakeups that re-acquired the lock only to find their predicate
    /// false again (spurious under `Evaluate` — another waiter consumed
    /// the state first; pervasive under `Broadcast`).
    pub futile_wakeups: u64,
}

/// One waiter slot; owned (written) by the handle with the matching
/// pid, scanned by unlockers.
struct Slot<T: ?Sized> {
    /// VACANT / WAITING / EVALUATING / NOTIFIED.
    state: AtomicU8,
    /// The registered condition.
    ///
    /// Safety: the pointee is a closure borrowed from the registering
    /// waiter's stack frame, its lifetime erased for storage. The
    /// protocol keeps every dereference inside the registration window:
    /// writes happen in `register` (slot VACANT, owner-only, before the
    /// `Release` store of WAITING), reads happen only in the EVALUATING
    /// window, and `deregister` refuses to return while an evaluator is
    /// in that window. A `RegistrationGuard` deregisters on unwind, so
    /// the window closes even if the waiting frame panics.
    cond: UnsafeCell<Option<StoredCond<T>>>,
    /// The parking slot the registered waiter blocks on.
    waiter: Waiter,
    /// An async waiter's waker, fired by [`CcsRegistry::wake`] in
    /// addition to the unpark (a registration belongs to either a
    /// parked thread or a suspended task, never both; the spare
    /// mechanism is a no-op). The mutex is uncontended in practice —
    /// the owning pid stores, an unlocker takes.
    waker: Mutex<Option<Waker>>,
}

impl<T: ?Sized> Slot<T> {
    fn new() -> Self {
        Slot {
            state: AtomicU8::new(VACANT),
            cond: UnsafeCell::new(None),
            waiter: Waiter::new(),
            waker: Mutex::new(None),
        }
    }
}

/// Restores a slot to WAITING if the condition evaluation unwinds, so a
/// panicking user predicate cannot strand the waiter in EVALUATING
/// (where its deregistration would spin forever).
struct EvalGuard<'a> {
    state: &'a AtomicU8,
    armed: bool,
}

impl Drop for EvalGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.state.store(WAITING, Ordering::Release);
        }
    }
}

/// The set of slots one unlock decided to wake: fixed-size bitmap, so
/// collecting wakes never allocates on the unlock path.
pub(crate) struct WakeSet {
    bits: [u64; MAX_SLOTS / 64],
    any: bool,
}

impl WakeSet {
    fn new() -> Self {
        WakeSet {
            bits: [0; MAX_SLOTS / 64],
            any: false,
        }
    }

    fn add(&mut self, i: usize) {
        self.bits[i / 64] |= 1 << (i % 64);
        self.any = true;
    }

    fn contains(&self, i: usize) -> bool {
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }
}

/// The per-mutex waiter registry; see the module docs.
pub(crate) struct CcsRegistry<T: ?Sized> {
    slots: Box<[Slot<T>]>,
    /// Exact count of registered (WAITING/EVALUATING/NOTIFIED) slots —
    /// the unlock fast path: zero means skip the scan entirely, so
    /// plain mutex traffic pays one relaxed load.
    waiting: AtomicUsize,
    policy: WakePolicy,
    wakeups: AtomicU64,
    transitions: AtomicU64,
    evaluated: AtomicU64,
    waits: AtomicU64,
    futile: AtomicU64,
}

// Safety: the registry stores raw condition pointers, but the protocol
// (documented on `Slot::cond`) confines every dereference to the
// registration window of a closure that was required to be `Sync` at
// registration; `&T` is only ever produced by the lock holder. All
// other state is atomics + `Waiter` (Send + Sync).
unsafe impl<T: ?Sized> Send for CcsRegistry<T> {}
unsafe impl<T: ?Sized> Sync for CcsRegistry<T> {}

impl<T: ?Sized> CcsRegistry<T> {
    pub(crate) fn new(capacity: usize, policy: WakePolicy) -> Self {
        assert!(
            capacity <= MAX_SLOTS,
            "CCS registry capacity {capacity} exceeds {MAX_SLOTS}"
        );
        CcsRegistry {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            waiting: AtomicUsize::new(0),
            policy,
            wakeups: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            evaluated: AtomicU64::new(0),
            waits: AtomicU64::new(0),
            futile: AtomicU64::new(0),
        }
    }

    pub(crate) fn policy(&self) -> WakePolicy {
        self.policy
    }

    /// Number of currently registered waiters.
    pub(crate) fn waiting(&self) -> usize {
        self.waiting.load(Ordering::SeqCst)
    }

    pub(crate) fn has_waiters(&self) -> bool {
        self.waiting() > 0
    }

    pub(crate) fn stats(&self) -> CcsStats {
        CcsStats {
            wakeups: self.wakeups.load(Ordering::Relaxed),
            transitions: self.transitions.load(Ordering::Relaxed),
            evaluated: self.evaluated.load(Ordering::Relaxed),
            waits: self.waits.load(Ordering::Relaxed),
            futile_wakeups: self.futile.load(Ordering::Relaxed),
        }
    }

    /// Register `cond` for `pid`. Caller must hold the lock (that is
    /// what makes registration race-free against state transitions) and
    /// must deregister before `cond`'s borrow ends. `pub(crate)` for the
    /// async conditional waits, whose registration windows span polls
    /// (their condition lives in a `Box` inside the future, so the
    /// borrow outlives the window even if the future is leaked).
    pub(crate) fn register<'a>(&self, pid: Pid, cond: &'a (dyn Fn(&T) -> bool + 'a)) {
        let slot = &self.slots[pid];
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), VACANT);
        let ptr: *const (dyn Fn(&T) -> bool + 'a) = cond;
        // Safety: slot is VACANT, so no evaluator reads it; only the
        // owning pid writes it. Erasing the borrow's lifetime (a
        // fat-pointer transmute that changes only the lifetime bound)
        // is sound per the protocol on `Slot::cond`.
        unsafe {
            *slot.cond.get() = Some(std::mem::transmute::<
                *const (dyn Fn(&T) -> bool + 'a),
                StoredCond<T>,
            >(ptr));
        }
        self.waiting.fetch_add(1, Ordering::SeqCst);
        slot.state.store(WAITING, Ordering::Release);
    }

    /// Remove `pid`'s registration; returns whether a notification had
    /// been delivered (and is hereby consumed). Callable without the
    /// lock; spins out any in-flight evaluation of this slot first.
    pub(crate) fn deregister(&self, pid: Pid) -> bool {
        let slot = &self.slots[pid];
        let notified = loop {
            match slot
                .state
                .compare_exchange(WAITING, VACANT, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => break false,
                Err(EVALUATING) => std::hint::spin_loop(),
                Err(NOTIFIED) => {
                    slot.state.store(VACANT, Ordering::Release);
                    break true;
                }
                Err(s) => unreachable!("deregister of pid {pid} found slot state {s}"),
            }
        };
        // Safety: state is VACANT again; only the owner touches the
        // pointer now.
        unsafe {
            *slot.cond.get() = None;
        }
        // Drop any unfired waker so a dead registration cannot be woken
        // later (and does not pin its task's allocation alive).
        slot.waker.lock().unwrap().take();
        self.waiting.fetch_sub(1, Ordering::SeqCst);
        notified
    }

    /// Store the waker an async waiter wants fired when its condition
    /// is satisfied. Call after [`register`](Self::register) and before
    /// releasing the lock (same race-freedom argument: any future
    /// evaluation happens-after).
    pub(crate) fn set_waker(&self, pid: Pid, waker: &Waker) {
        let mut slot = self.slots[pid].waker.lock().unwrap();
        *slot = Some(waker.clone());
    }

    /// Bump the park-episode counter (async waits count one per
    /// registration window, mirroring the sync park episodes).
    pub(crate) fn note_wait(&self) {
        self.waits.fetch_add(1, Ordering::Relaxed);
    }

    /// The parking slot a registered waiter blocks on. The arena's
    /// conditional waits drive the registry directly (its data lives in
    /// arena entries, not behind an `AbortableMutex`), so they need the
    /// waiter [`lock_when_raw`] reaches through `m.ccs.slots`.
    pub(crate) fn cond_waiter(&self, pid: Pid) -> &Waiter {
        &self.slots[pid].waiter
    }

    /// Bump the futile-wakeup counter (a waiter woken only to find its
    /// predicate false again).
    pub(crate) fn note_futile(&self) {
        self.futile.fetch_add(1, Ordering::Relaxed);
    }

    /// Evaluate registered conditions against `data` (the unlocker must
    /// hold the lock) and return the set of waiters to wake after the
    /// lock is released. `skip` is the unlocker's own slot.
    pub(crate) fn evaluate(&self, skip: Pid, data: &T) -> WakeSet {
        self.transitions.fetch_add(1, Ordering::Relaxed);
        let mut set = WakeSet::new();
        for (i, slot) in self.slots.iter().enumerate() {
            if i == skip {
                continue;
            }
            match self.policy {
                WakePolicy::Broadcast => {
                    if slot
                        .state
                        .compare_exchange(WAITING, NOTIFIED, Ordering::AcqRel, Ordering::Relaxed)
                        .is_ok()
                    {
                        set.add(i);
                    }
                }
                WakePolicy::Evaluate => {
                    if slot
                        .state
                        .compare_exchange(WAITING, EVALUATING, Ordering::Acquire, Ordering::Relaxed)
                        .is_err()
                    {
                        continue;
                    }
                    let mut guard = EvalGuard {
                        state: &slot.state,
                        armed: true,
                    };
                    // Safety: the slot was WAITING, so the pointer is
                    // registered and its waiter cannot leave while we
                    // are EVALUATING.
                    let cond = unsafe { &*(*slot.cond.get()).expect("WAITING slot has a cond") };
                    let satisfied = cond(data);
                    self.evaluated.fetch_add(1, Ordering::Relaxed);
                    guard.armed = false;
                    if satisfied {
                        slot.state.store(NOTIFIED, Ordering::Release);
                        set.add(i);
                    } else {
                        slot.state.store(WAITING, Ordering::Release);
                    }
                }
            }
        }
        set
    }

    /// Unpark every waiter in `set`; returns how many. Called *after*
    /// the lock is released.
    pub(crate) fn wake(&self, set: &WakeSet) -> usize {
        if !set.any {
            return 0;
        }
        let mut n = 0;
        for (i, slot) in self.slots.iter().enumerate() {
            if set.contains(i) {
                slot.waiter.unpark();
                if let Some(w) = slot.waker.lock().unwrap().take() {
                    w.wake();
                }
                n += 1;
            }
        }
        self.wakeups.fetch_add(n as u64, Ordering::Relaxed);
        n
    }
}

/// Deregisters on unwind so a panic elsewhere in the wait loop (e.g.
/// another waiter's predicate panicking inside our unlock-side
/// evaluation) cannot leave a dangling condition pointer registered.
pub(crate) struct RegistrationGuard<'a, T: ?Sized> {
    reg: &'a CcsRegistry<T>,
    pid: Pid,
    armed: bool,
}

impl<'a, T: ?Sized> RegistrationGuard<'a, T> {
    pub(crate) fn register(
        reg: &'a CcsRegistry<T>,
        pid: Pid,
        cond: &(dyn Fn(&T) -> bool + '_),
    ) -> Self {
        reg.register(pid, cond);
        RegistrationGuard {
            reg,
            pid,
            armed: true,
        }
    }

    /// Normal-path deregistration; returns whether a notification was
    /// consumed.
    pub(crate) fn deregister(mut self) -> bool {
        self.armed = false;
        self.reg.deregister(self.pid)
    }
}

impl<T: ?Sized> Drop for RegistrationGuard<'_, T> {
    fn drop(&mut self) {
        if self.armed {
            self.reg.deregister(self.pid);
        }
    }
}

/// What bounds a conditional wait: nothing, a deadline, or a caller
/// signal. Monomorphized per entry point so the unbounded path carries
/// no deadline checks.
pub(crate) enum Limit<'s, S: AbortSignal + ?Sized> {
    /// Wait as long as it takes (`lock_when`, `await_when`).
    Forever,
    /// Give up once the instant passes (`lock_when_for/_until`).
    Until(Instant),
    /// Give up once the signal fires (`lock_when_abortable`).
    Signal(&'s S),
}

impl<S: AbortSignal + ?Sized> Limit<'_, S> {
    /// Acquire the lock under this limit. On `Err` the lock is NOT
    /// held. Uses the paper's bounded-RMR abort path for both the
    /// deadline and the signal case — a deadline firing while queued
    /// costs a bounded number of the caller's own steps.
    fn acquire<T: ?Sized, P: Probe>(
        &self,
        m: &AbortableMutex<T, P>,
        pid: Pid,
    ) -> Result<(), AbortReason> {
        let entered = match self {
            Limit::Forever => m
                .lock
                .enter_core(&m.mem, pid, &NeverAbort, &m.probe)
                .entered(),
            Limit::Until(t) => m
                .lock
                .enter_core(&m.mem, pid, &crate::deadline_signal(*t), &m.probe)
                .entered(),
            Limit::Signal(s) => m.lock.enter_core(&m.mem, pid, s, &m.probe).entered(),
        };
        if entered {
            Ok(())
        } else {
            Err(self.reason())
        }
    }

    /// The reason this limit reports when it cuts a wait short.
    fn reason(&self) -> AbortReason {
        match self {
            Limit::Forever => unreachable!("unbounded waits cannot abort"),
            Limit::Until(_) => AbortReason::Deadline,
            Limit::Signal(_) => AbortReason::Caller,
        }
    }

    /// Whether the limit has already expired (checked while holding the
    /// lock, before committing to a park).
    fn expired(&self) -> Option<AbortReason> {
        match self {
            Limit::Forever => None,
            Limit::Until(t) => (Instant::now() >= *t).then_some(AbortReason::Deadline),
            Limit::Signal(s) => s.is_set().then_some(AbortReason::Caller),
        }
    }

    /// Park on `w` until notified or the limit expires. `None` means
    /// notified (or a spurious wake — callers re-check their predicate
    /// anyway); `Some(reason)` means the limit ended the wait.
    ///
    /// Deadline limits park exactly until their instant; signal limits
    /// re-poll the signal every [`SIGNAL_POLL`] (an arbitrary signal
    /// has no one to wake us when it fires).
    fn park(&self, w: &Waiter) -> Option<AbortReason> {
        match self {
            Limit::Forever => {
                w.park_until(None);
                None
            }
            Limit::Until(t) => match w.park_until(Some(*t)) {
                ParkResult::Notified => None,
                ParkResult::TimedOut => Some(AbortReason::Deadline),
            },
            Limit::Signal(s) => loop {
                match w.park_until(Some(Instant::now() + SIGNAL_POLL)) {
                    ParkResult::Notified => return None,
                    ParkResult::TimedOut => {
                        if s.is_set() {
                            return Some(AbortReason::Caller);
                        }
                    }
                }
            },
        }
    }
}

/// The conditional-acquisition loop behind every `lock_when*` entry
/// point. On `Ok(())` the caller holds the lock and `pred` held at the
/// last check; on `Err` the lock is not held.
pub(crate) fn lock_when_raw<T, P, F, S>(
    m: &AbortableMutex<T, P>,
    pid: Pid,
    pred: &F,
    limit: &Limit<'_, S>,
) -> Result<(), AbortReason>
where
    T: ?Sized,
    P: Probe,
    F: Fn(&T) -> bool + Sync,
    S: AbortSignal + ?Sized,
{
    let mut woken = false;
    loop {
        limit.acquire(m, pid)?;
        // Safety: we hold the lock.
        if pred(unsafe { &*m.data.get() }) {
            return Ok(());
        }
        if woken {
            m.ccs.futile.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(reason) = limit.expired() {
            m.unlock_with_eval(pid);
            return Err(reason);
        }
        let reg = RegistrationGuard::register(&m.ccs, pid, pred);
        m.unlock_with_eval(pid);
        m.ccs.waits.fetch_add(1, Ordering::Relaxed);
        let expired = limit.park(&m.ccs.slots[pid].waiter);
        let notified = reg.deregister();
        if let Some(reason) = expired {
            // A wakeup racing the timeout is dropped — safe, because
            // evaluation woke *every* satisfiable waiter, not a chosen
            // one, so no other waiter's token depended on ours.
            return Err(reason);
        }
        woken = notified;
    }
}

/// The re-wait loop behind `MutexGuard::await_when*`: entered and
/// exited with the lock HELD. `Ok(())` means `pred` held at the last
/// check; `Err` means the limit expired and `pred` was false at the
/// final (lock-held) check. Timed variants bound the wait for the
/// predicate, not the re-acquisition (abseil `AwaitWithTimeout`
/// semantics): the final re-entry is unconditional, bounded by the
/// lock's starvation freedom.
pub(crate) fn await_when_raw<T, P, F, S>(
    m: &AbortableMutex<T, P>,
    pid: Pid,
    pred: &F,
    limit: &Limit<'_, S>,
) -> Result<(), AbortReason>
where
    T: ?Sized,
    P: Probe,
    F: Fn(&T) -> bool + Sync,
    S: AbortSignal + ?Sized,
{
    let mut woken = false;
    loop {
        // Safety: we hold the lock (loop invariant).
        if pred(unsafe { &*m.data.get() }) {
            return Ok(());
        }
        if woken {
            m.ccs.futile.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(reason) = limit.expired() {
            return Err(reason);
        }
        let reg = RegistrationGuard::register(&m.ccs, pid, pred);
        m.unlock_with_eval(pid);
        m.ccs.waits.fetch_add(1, Ordering::Relaxed);
        let expired = limit.park(&m.ccs.slots[pid].waiter);
        let notified = reg.deregister();
        // Re-acquire unconditionally: the caller's guard stays valid.
        let outcome = m.lock.enter_core(&m.mem, pid, &NeverAbort, &m.probe);
        debug_assert!(outcome.entered());
        if let Some(reason) = expired {
            if pred(unsafe { &*m.data.get() }) {
                return Ok(());
            }
            return Err(reason);
        }
        woken = notified;
    }
}
