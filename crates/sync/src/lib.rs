//! # sal-sync — a practical abortable mutex built on the paper's lock
//!
//! [`AbortableMutex<T>`] wraps the bounded long-lived lock of
//! `sal-core` (Figure 5 + §6.2) around a value, running the *identical*
//! algorithm code over bare `AtomicU64`s ([`sal_memory::RawMemory`])
//! instead of the instrumented simulator memory. The API follows
//! `std::sync::Mutex`, plus the paper's whole point — acquisition
//! attempts that can give up:
//!
//! * timeouts ([`MutexHandle::try_lock_for`] /
//!   [`MutexHandle::try_lock_until`]) — Scott & Scherer's motivating use
//!   case;
//! * external cancellation ([`MutexHandle::lock_abortable`] with an
//!   [`AbortFlag`]) — abandon a work chunk, recover from deadlock, or
//!   yield to a high-priority thread (§1's three use cases; see
//!   `examples/`).
//!
//! Each participating thread registers once for a [`MutexHandle`]; the
//! underlying algorithm is capacity-bounded (`O(N²)` words for `N`
//! registered threads) and starvation-free.
//!
//! ```
//! use sal_sync::AbortableMutex;
//! use std::time::Duration;
//!
//! let mutex = AbortableMutex::with_capacity(0u64, 4);
//! let mut h = mutex.handle();
//! *h.lock() += 1;                                  // blocking acquire
//! if let Some(mut g) = h.try_lock_for(Duration::from_millis(10)) {
//!     *g += 1;                                     // timed acquire
//! }
//! assert_eq!(*h.lock(), 2);
//! ```

#![warn(missing_docs)]

use sal_core::long_lived::BoundedLongLivedLock;
use sal_memory::{AbortSignal, Deadline, Mem, MemoryBuilder, NeverAbort, Pid, RawMemory};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

pub use sal_memory::AbortFlag;

/// Default thread capacity of [`AbortableMutex::new`].
pub const DEFAULT_CAPACITY: usize = 64;

/// A mutual-exclusion primitive protecting a `T`, with abortable
/// acquisition, built on the PODC'18 sublogarithmic-RMR abortable lock.
///
/// Unlike `std::sync::Mutex`, threads interact through per-thread
/// [`MutexHandle`]s (the algorithm needs stable process identities);
/// obtain one per thread with [`handle`](Self::handle).
pub struct AbortableMutex<T: ?Sized> {
    mem: RawMemory,
    lock: BoundedLongLivedLock,
    next_pid: AtomicUsize,
    capacity: usize,
    data: UnsafeCell<T>,
}

// Safety: the lock algorithm provides mutual exclusion over `data`
// (Lemma 26 / Theorem 23); handles hand out access only under the lock.
unsafe impl<T: ?Sized + Send> Send for AbortableMutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for AbortableMutex<T> {}

impl<T> AbortableMutex<T> {
    /// Create a mutex for up to [`DEFAULT_CAPACITY`] threads.
    pub fn new(value: T) -> Self {
        Self::with_capacity(value, DEFAULT_CAPACITY)
    }

    /// Create a mutex for up to `threads` registered threads
    /// (`1 ..= 1022`). Space is `O(threads²)` words, per Claim 28.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds the algorithm's descriptor
    /// capacity (1022).
    pub fn with_capacity(value: T, threads: usize) -> Self {
        let mut b = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout(&mut b, threads, 64);
        AbortableMutex {
            mem: b.build_raw(threads),
            lock,
            next_pid: AtomicUsize::new(0),
            capacity: threads,
            data: UnsafeCell::new(value),
        }
    }

    /// Register the calling context and get a handle. Each handle owns
    /// one of the `capacity` process slots for the mutex's lifetime.
    ///
    /// # Panics
    ///
    /// Panics when more handles are requested than the capacity allows.
    pub fn handle(&self) -> MutexHandle<'_, T> {
        let pid = self.next_pid.fetch_add(1, Ordering::Relaxed);
        assert!(
            pid < self.capacity,
            "AbortableMutex capacity ({}) exceeded; build with a larger with_capacity",
            self.capacity
        );
        MutexHandle { mutex: self, pid }
    }

    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Number of threads this mutex can register.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Shared memory words the lock occupies (the Table-1 space column,
    /// measured).
    pub fn shared_words(&self) -> usize {
        self.mem.num_words()
    }
}

impl<T: fmt::Debug> fmt::Debug for AbortableMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbortableMutex")
            .field("capacity", &self.capacity)
            .field("registered", &self.next_pid.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<T: Default> Default for AbortableMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for AbortableMutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A per-thread handle to an [`AbortableMutex`]. Obtain with
/// [`AbortableMutex::handle`]; move it to the thread that will use it.
/// Locking takes `&mut self`, so the borrow checker rules out re-entrant
/// acquisition through the same handle.
pub struct MutexHandle<'m, T: ?Sized> {
    mutex: &'m AbortableMutex<T>,
    pid: Pid,
}

impl<T: ?Sized> fmt::Debug for MutexHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexHandle")
            .field("pid", &self.pid)
            .finish()
    }
}

impl<'m, T: ?Sized> MutexHandle<'m, T> {
    /// The process slot this handle occupies (diagnostic).
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Acquire the lock, waiting as long as it takes.
    pub fn lock(&mut self) -> MutexGuard<'_, 'm, T> {
        let entered = self
            .mutex
            .lock
            .enter(&self.mutex.mem, self.pid, &NeverAbort);
        debug_assert!(entered, "non-abortable enter cannot fail");
        MutexGuard {
            handle: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Acquire with an arbitrary abort signal; `None` if the attempt was
    /// abandoned. The signal may fire after the lock is already won, in
    /// which case the acquisition still succeeds (the paper's `Enter`
    /// semantics) — the guard is returned and the caller decides.
    pub fn lock_abortable(
        &mut self,
        signal: &(impl AbortSignal + ?Sized),
    ) -> Option<MutexGuard<'_, 'm, T>> {
        if self.mutex.lock.enter(&self.mutex.mem, self.pid, &signal) {
            Some(MutexGuard {
                handle: self,
                _marker: std::marker::PhantomData,
            })
        } else {
            None
        }
    }

    /// Acquire unless `timeout` elapses first.
    pub fn try_lock_for(&mut self, timeout: Duration) -> Option<MutexGuard<'_, 'm, T>> {
        self.lock_abortable(&Deadline::after(timeout))
    }

    /// Acquire unless the deadline passes first.
    pub fn try_lock_until(&mut self, deadline: Instant) -> Option<MutexGuard<'_, 'm, T>> {
        self.lock_abortable(&Deadline::at(deadline))
    }

    /// One near-immediate attempt: give up as soon as the lock is
    /// observed held. (Like the paper's `Enter` with a pre-fired signal:
    /// if the lock is handed over before the first wait, the acquisition
    /// still succeeds.)
    pub fn try_lock(&mut self) -> Option<MutexGuard<'_, 'm, T>> {
        struct Now;
        impl AbortSignal for Now {
            fn is_set(&self) -> bool {
                true
            }
        }
        self.lock_abortable(&Now)
    }
}

/// RAII guard: the lock is held while the guard lives, released on drop.
///
/// Like `std::sync::MutexGuard`: `Sync` only when `T: Sync` (sharing
/// `&MutexGuard` hands out `&T` across threads), and not `Send` (the
/// guard releases through the per-thread handle it borrows).
pub struct MutexGuard<'h, 'm, T: ?Sized> {
    handle: &'h mut MutexHandle<'m, T>,
    /// Suppresses the auto `Send`/`Sync` impls, which would otherwise be
    /// derived from the handle reference and wrongly make the guard
    /// `Sync` for any `T: Send` (unsound for `T = Cell<_>` etc.).
    _marker: std::marker::PhantomData<*const ()>,
}

// Safety: `&MutexGuard<T>` only exposes `&T` (plus lock bookkeeping that
// is itself thread-safe), so sharing requires exactly `T: Sync`.
unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, '_, T> {}

impl<T: ?Sized> Deref for MutexGuard<'_, '_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: we hold the lock.
        unsafe { &*self.handle.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, '_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: we hold the lock exclusively.
        unsafe { &mut *self.handle.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, '_, T> {
    fn drop(&mut self) {
        self.handle
            .mutex
            .lock
            .exit(&self.handle.mutex.mem, self.handle.pid);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, '_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("MutexGuard").field(&&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn basic_lock_unlock_mutates_data() {
        let m = AbortableMutex::with_capacity(vec![1, 2], 2);
        let mut h = m.handle();
        h.lock().push(3);
        assert_eq!(*h.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn counter_integrity_under_real_threads() {
        let m = Arc::new(AbortableMutex::with_capacity(0u64, 9));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut h = m.handle();
                    for _ in 0..500 {
                        *h.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut h = m.handle();
        assert_eq!(*h.lock(), 4000);
    }

    #[test]
    fn timeout_abandons_a_held_lock() {
        let m = AbortableMutex::with_capacity((), 2);
        let mut h0 = m.handle();
        let mut h1 = m.handle();
        let _g = h0.lock();
        let start = Instant::now();
        assert!(h1.try_lock_for(Duration::from_millis(20)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn flag_cancellation_unblocks_a_waiter() {
        let m = Arc::new(AbortableMutex::with_capacity(0u32, 2));
        let flag = AbortFlag::new();
        let waiting = Arc::new(AtomicBool::new(false));
        let mut holder = m.handle();
        let g = holder.lock();
        let t = {
            let m = Arc::clone(&m);
            let flag = flag.clone();
            let waiting = Arc::clone(&waiting);
            std::thread::spawn(move || {
                let mut h = m.handle();
                waiting.store(true, Ordering::SeqCst);
                let aborted = h.lock_abortable(&flag).is_none();
                aborted
            })
        };
        while !waiting.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(5));
        flag.set();
        assert!(t.join().unwrap(), "waiter should have aborted");
        drop(g);
    }

    #[test]
    fn try_lock_fails_fast_when_held_and_succeeds_when_free() {
        let m = AbortableMutex::with_capacity((), 3);
        let mut a = m.handle();
        let mut b = m.handle();
        {
            let _g = a.lock();
            assert!(b.try_lock().is_none());
        }
        assert!(b.try_lock().is_some());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_registration_panics() {
        let m = AbortableMutex::with_capacity((), 1);
        let _a = m.handle();
        let _b = m.handle();
    }

    #[test]
    fn contended_timed_locking_with_many_threads() {
        let m = Arc::new(AbortableMutex::with_capacity(0u64, 8));
        let acquired = Arc::new(AtomicUsize::new(0));
        let aborted = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                let acquired = Arc::clone(&acquired);
                let aborted = Arc::clone(&aborted);
                std::thread::spawn(move || {
                    let mut h = m.handle();
                    for _ in 0..100 {
                        match h.try_lock_for(Duration::from_micros(200)) {
                            Some(mut g) => {
                                *g += 1;
                                acquired.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = acquired.load(Ordering::Relaxed) as u64;
        let m = Arc::try_unwrap(m).expect("all threads joined");
        assert_eq!(m.into_inner(), total, "every acquisition incremented once");
        assert_eq!(
            acquired.load(Ordering::Relaxed) + aborted.load(Ordering::Relaxed),
            800
        );
    }

    #[test]
    fn debug_and_default_impls() {
        let m: AbortableMutex<u8> = AbortableMutex::default();
        assert!(format!("{m:?}").contains("AbortableMutex"));
        assert_eq!(m.capacity(), DEFAULT_CAPACITY);
        assert!(m.shared_words() > 0);
        let m2: AbortableMutex<u8> = 7u8.into();
        let mut h = m2.handle();
        assert_eq!(*h.lock(), 7);
    }
}

#[cfg(test)]
mod marker_tests {
    use super::*;

    fn assert_sync<T: Sync>() {}
    fn assert_send<T: Send>() {}

    #[test]
    fn auto_trait_bounds_match_std_mutex() {
        // The mutex itself: Send + Sync for T: Send, like std.
        assert_send::<AbortableMutex<std::cell::Cell<u64>>>();
        assert_sync::<AbortableMutex<std::cell::Cell<u64>>>();
        // The guard: Sync requires T: Sync (manual impl); a guard over a
        // Send-but-not-Sync T must NOT be shareable — enforced by the
        // PhantomData suppressor + the T: Sync bound on the unsafe impl.
        assert_sync::<MutexGuard<'static, 'static, u64>>();
        // (A compile-fail check for `MutexGuard<Cell<u64>>: Sync` lives
        // in the doc comment; negative impls aren't testable on stable.)
    }
}
