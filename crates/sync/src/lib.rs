//! # sal-sync — a practical abortable mutex built on the paper's lock
//!
//! [`AbortableMutex<T>`] wraps the bounded long-lived lock of
//! `sal-core` (Figure 5 + §6.2) around a value, running the *identical*
//! algorithm code over bare `AtomicU64`s ([`sal_memory::RawMemory`])
//! instead of the instrumented simulator memory. The API follows
//! `std::sync::Mutex`, plus the paper's whole point — acquisition
//! attempts that can give up:
//!
//! * timeouts ([`MutexHandle::try_lock_for`] /
//!   [`MutexHandle::try_lock_until`]) — Scott & Scherer's motivating use
//!   case;
//! * external cancellation ([`MutexHandle::lock_abortable`] with an
//!   [`AbortFlag`]) — abandon a work chunk, recover from deadlock, or
//!   yield to a high-priority thread (§1's three use cases; see
//!   `examples/`).
//!
//! Each participating thread registers once for a [`MutexHandle`]; the
//! underlying algorithm is capacity-bounded (`O(N²)` words for `N`
//! registered threads) and starvation-free.
//!
//! ## Conditional critical sections
//!
//! Beyond plain locking, the mutex offers the nsync/abseil
//! conditional-critical-section interface: acquire the lock *when a
//! predicate over the protected value holds*, with blocked waiters
//! parked (spin-then-park) rather than spinning.
//!
//! * [`MutexHandle::lock_when`] — block until `pred(&data)` is true and
//!   the lock is held;
//! * [`MutexHandle::lock_when_for`] / [`MutexHandle::lock_when_until`]
//!   (MutexHandle::lock_when_until) — the same with a deadline. The
//!   deadline is injected as the paper's abort signal, so a waiter
//!   whose deadline fires *while queued in the lock* abandons in a
//!   bounded number of its own steps — a timeout CCS lock over the
//!   bounded-RMR abort path;
//! * [`MutexHandle::lock_when_abortable`] — caller-signal cancellation,
//!   with [`AbortReason`] saying which limit ended an attempt;
//! * [`MutexGuard::await_when`] (+ timed variants) — atomically release,
//!   re-wait for a predicate, and re-acquire, while a guard is held.
//!
//! The mechanism is **unlock-side condition evaluation** ([`ccs`]
//! module docs): waiters register their conditions, and each unlock
//! evaluates them under the lock, waking only the waiters whose
//! condition currently holds — one state transition wakes the
//! satisfiable waiters, not the whole herd. The broadcast behaviour is
//! available as [`WakePolicy::Broadcast`] (the measured baseline of the
//! `ccsscale` bench).
//!
//! ## Async locking
//!
//! [`AsyncAbortableMutex`] is the same lock behind poll-based futures:
//! `lock().await` suspends the task instead of spinning the thread, and
//! **dropping a pending lock future is an abort** — cancellation runs
//! the paper's bounded abort path in the dropping task's own poll, so
//! `select!`-style timeouts compose with the lock for free. See the
//! [`async_mutex`] module docs.
//!
//! ```
//! use sal_sync::AbortableMutex;
//!
//! let m = AbortableMutex::builder(Vec::<u32>::new()).capacity(2).build();
//! let mut producer = m.handle();
//! let mut consumer = m.handle();
//! std::thread::scope(|s| {
//!     s.spawn(move || producer.lock().push(7));
//!     s.spawn(move || {
//!         let q = consumer.lock_when(|q| !q.is_empty());
//!         assert_eq!(q[0], 7);
//!     });
//! });
//! ```
//!
//! ```
//! use sal_sync::AbortableMutex;
//! use std::time::Duration;
//!
//! let mutex = AbortableMutex::builder(0u64).capacity(4).build();
//! let mut h = mutex.handle();
//! *h.lock() += 1;                                  // blocking acquire
//! if let Some(mut g) = h.try_lock_for(Duration::from_millis(10)) {
//!     *g += 1;                                     // timed acquire
//! }
//! assert_eq!(*h.lock(), 2);
//! ```
//!
//! ## Opt-in observability
//!
//! The builder accepts any [`sal_obs::Probe`]; the mutex then reports
//! passage lifecycle (and, under instrumented memories, RMR) events to
//! it. With the default [`NoProbe`] every hook monomorphizes to a no-op
//! — the uninstrumented fast path keeps its codegen.
//!
//! ```
//! use sal_obs::PassageStats;
//! use sal_sync::AbortableMutex;
//!
//! let stats = PassageStats::new();
//! let mutex = AbortableMutex::builder(0u64)
//!     .capacity(2)
//!     .probe(stats.clone())
//!     .build();
//! let mut h = mutex.handle();
//! *h.lock() += 1;
//! assert_eq!(stats.total_entered(), 1);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod async_mutex;
pub mod ccs;

use ccs::{CcsRegistry, Limit};
use sal_core::long_lived::BoundedLongLivedLock;
use sal_core::LockCore;
use sal_memory::{AbortSignal, Deadline, Mem, MemoryBuilder, NeverAbort, Pid, RawMemory};
use sal_obs::{NoProbe, Probe};
use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

pub use arena::{Arena, ArenaBuilder, ArenaGuard, ArenaStats};
pub use async_mutex::{AsyncAbortableMutex, AsyncMutexGuard, AsyncStats};
pub use ccs::{CcsStats, WakePolicy};
pub use sal_core::abort::{AbortReason, Immediate};
pub use sal_memory::AbortFlag;

/// Default thread capacity of [`AbortableMutex::new`] and
/// [`AbortableMutex::builder`].
pub const DEFAULT_CAPACITY: usize = 64;

/// Every deadline-bound entry point — [`MutexHandle::try_lock_until`],
/// [`MutexHandle::lock_when_until`] (via [`ccs::Limit`]), and the async
/// `lock_deadline`/`lock_when_deadline` — builds its abort signal here,
/// so "deadline → abort signal" has exactly one definition: the
/// deadline is injected as the lock's abort signal and honoured on the
/// paper's bounded-RMR abort path, not checked post hoc.
pub(crate) fn deadline_signal(at: Instant) -> Deadline {
    Deadline::at(at)
}

/// Relative-timeout entry points (`*_for` / `*_timeout`) resolve to an
/// absolute deadline exactly once, here, so the timeout and deadline
/// variants of each method cannot drift apart.
pub(crate) fn timeout_deadline(timeout: Duration) -> Instant {
    Instant::now() + timeout
}

/// Default branching factor of the underlying `W`-ary tree.
const DEFAULT_BRANCHING: usize = 64;

/// Configures and constructs an [`AbortableMutex`]: capacity, tree
/// branching, and an optional [`Probe`] sink. Obtain with
/// [`AbortableMutex::builder`].
///
/// ```
/// use sal_sync::AbortableMutex;
///
/// let mutex = AbortableMutex::builder(String::new()).capacity(8).build();
/// assert_eq!(mutex.capacity(), 8);
/// ```
#[derive(Debug)]
pub struct AbortableMutexBuilder<T, P: Probe = NoProbe> {
    value: T,
    capacity: usize,
    branching: usize,
    wake_policy: WakePolicy,
    probe: P,
}

impl<T, P: Probe> AbortableMutexBuilder<T, P> {
    /// Maximum number of registered threads (`1 ..= 1022`). Space is
    /// `O(capacity²)` words, per Claim 28. Defaults to
    /// [`DEFAULT_CAPACITY`].
    pub fn capacity(mut self, threads: usize) -> Self {
        self.capacity = threads;
        self
    }

    /// Branching factor `W` of the underlying tree (`2 ..= 64`).
    /// Defaults to 64, the paper's `Θ(√(log N / log log N))`-optimal
    /// word-width choice for realistic `N`.
    pub fn branching(mut self, w: usize) -> Self {
        self.branching = w;
        self
    }

    /// How unlocks treat conditional waiters: [`WakePolicy::Evaluate`]
    /// (the default — wake only satisfiable waiters) or
    /// [`WakePolicy::Broadcast`] (wake everyone; the measured baseline).
    pub fn wake_policy(mut self, policy: WakePolicy) -> Self {
        self.wake_policy = policy;
        self
    }

    /// Attach an observability sink: every passage of every handle
    /// reports lifecycle events to `probe`. Pass a clone of a shared
    /// sink handle (e.g. [`sal_obs::PassageStats`]) and keep the
    /// original for reading.
    pub fn probe<Q: Probe>(self, probe: Q) -> AbortableMutexBuilder<T, Q> {
        AbortableMutexBuilder {
            value: self.value,
            capacity: self.capacity,
            branching: self.branching,
            wake_policy: self.wake_policy,
            probe,
        }
    }

    /// Build the mutex.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is 0 or exceeds the algorithm's descriptor
    /// limit (1022), or if the branching factor is out of `2 ..= 64`.
    pub fn build(self) -> AbortableMutex<T, P> {
        let mut b = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout(&mut b, self.capacity, self.branching);
        AbortableMutex {
            mem: b.build_raw(self.capacity),
            lock,
            next_pid: AtomicUsize::new(0),
            capacity: self.capacity,
            probe: self.probe,
            ccs: CcsRegistry::new(self.capacity, self.wake_policy),
            data: UnsafeCell::new(self.value),
        }
    }
}

/// A mutual-exclusion primitive protecting a `T`, with abortable
/// acquisition, built on the PODC'18 sublogarithmic-RMR abortable lock.
///
/// Unlike `std::sync::Mutex`, threads interact through per-thread
/// [`MutexHandle`]s (the algorithm needs stable process identities);
/// obtain one per thread with [`handle`](Self::handle).
///
/// The second type parameter is the attached [`Probe`] sink; the default
/// [`NoProbe`] compiles to the uninstrumented fast path. Configure with
/// [`builder`](Self::builder).
pub struct AbortableMutex<T: ?Sized, P: Probe = NoProbe> {
    mem: RawMemory,
    lock: BoundedLongLivedLock,
    next_pid: AtomicUsize,
    capacity: usize,
    probe: P,
    ccs: CcsRegistry<T>,
    data: UnsafeCell<T>,
}

// Safety: the lock algorithm provides mutual exclusion over `data`
// (Lemma 26 / Theorem 23); handles hand out access only under the lock.
// `P: Probe` is already `Send + Sync`.
unsafe impl<T: ?Sized + Send, P: Probe> Send for AbortableMutex<T, P> {}
unsafe impl<T: ?Sized + Send, P: Probe> Sync for AbortableMutex<T, P> {}

impl<T> AbortableMutex<T> {
    /// Start configuring a mutex around `value` — capacity, branching
    /// and probe are set on the returned [`AbortableMutexBuilder`].
    pub fn builder(value: T) -> AbortableMutexBuilder<T> {
        AbortableMutexBuilder {
            value,
            capacity: DEFAULT_CAPACITY,
            branching: DEFAULT_BRANCHING,
            wake_policy: WakePolicy::default(),
            probe: NoProbe,
        }
    }

    /// Create a mutex for up to [`DEFAULT_CAPACITY`] threads.
    ///
    /// Retained shim, equivalent to `AbortableMutex::builder(value)
    /// .build()` — prefer the [`builder`](Self::builder), which also
    /// exposes capacity, branching and probe attachment.
    pub fn new(value: T) -> Self {
        Self::builder(value).build()
    }
}

impl<T, P: Probe> AbortableMutex<T, P> {
    /// Consume the mutex and return the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized, P: Probe> AbortableMutex<T, P> {
    /// Register the calling context and get a handle. Each handle owns
    /// one of the `capacity` process slots for the mutex's lifetime.
    ///
    /// # Panics
    ///
    /// Panics when more handles are requested than the capacity allows.
    pub fn handle(&self) -> MutexHandle<'_, T, P> {
        let pid = self.next_pid.fetch_add(1, Ordering::Relaxed);
        assert!(
            pid < self.capacity,
            "AbortableMutex capacity ({}) exceeded; build with a larger capacity",
            self.capacity
        );
        MutexHandle { mutex: self, pid }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Number of threads this mutex can register.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Shared memory words the lock occupies (the Table-1 space column,
    /// measured).
    pub fn shared_words(&self) -> usize {
        self.mem.num_words()
    }

    /// The attached probe sink.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// The configured [`WakePolicy`] for conditional waiters.
    pub fn wake_policy(&self) -> WakePolicy {
        self.ccs.policy()
    }

    /// Number of threads currently blocked in a conditional wait
    /// (`lock_when*` / `await_when*`) on this mutex.
    pub fn waiters(&self) -> usize {
        self.ccs.waiting()
    }

    /// Snapshot of the conditional-critical-section counters; see
    /// [`CcsStats`] for the headline `wakeups / transitions` ratio.
    pub fn ccs_stats(&self) -> CcsStats {
        self.ccs.stats()
    }

    /// Release the lock held by `pid`, first evaluating registered
    /// waiter conditions under the lock (the unlock-side evaluation at
    /// the heart of the CCS design; [`ccs`] module docs). With no
    /// registered waiters this is `exit_core` plus one relaxed load.
    pub(crate) fn unlock_with_eval(&self, pid: Pid) {
        if self.ccs.has_waiters() {
            // Safety: the caller holds the lock, so the protected value
            // is stable under our feet while conditions run.
            let set = self.ccs.evaluate(pid, unsafe { &*self.data.get() });
            self.lock.exit_core(&self.mem, pid, &self.probe);
            let n = self.ccs.wake(&set);
            if n > 0 {
                self.probe.note(pid, "ccs-wake", n as u64);
            }
        } else {
            self.lock.exit_core(&self.mem, pid, &self.probe);
        }
    }
}

impl<T: fmt::Debug, P: Probe> fmt::Debug for AbortableMutex<T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AbortableMutex")
            .field("capacity", &self.capacity)
            .field("registered", &self.next_pid.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<T: Default> Default for AbortableMutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> From<T> for AbortableMutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A per-thread handle to an [`AbortableMutex`]. Obtain with
/// [`AbortableMutex::handle`]; move it to the thread that will use it.
/// Locking takes `&mut self`, so the borrow checker rules out re-entrant
/// acquisition through the same handle.
pub struct MutexHandle<'m, T: ?Sized, P: Probe = NoProbe> {
    mutex: &'m AbortableMutex<T, P>,
    pid: Pid,
}

impl<T: ?Sized, P: Probe> fmt::Debug for MutexHandle<'_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexHandle")
            .field("pid", &self.pid)
            .finish()
    }
}

impl<'m, T: ?Sized, P: Probe> MutexHandle<'m, T, P> {
    /// The process slot this handle occupies (diagnostic).
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Acquire the lock, waiting as long as it takes.
    ///
    /// Routed through [`LockCore`] monomorphized at
    /// `(RawMemory, P)` — with the default [`NoProbe`] the whole
    /// passage compiles to direct atomic operations.
    pub fn lock(&mut self) -> MutexGuard<'_, 'm, T, P> {
        let outcome =
            self.mutex
                .lock
                .enter_core(&self.mutex.mem, self.pid, &NeverAbort, &self.mutex.probe);
        debug_assert!(outcome.entered(), "non-abortable enter cannot fail");
        MutexGuard {
            handle: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Acquire with an arbitrary abort signal; `None` if the attempt was
    /// abandoned. The signal may fire after the lock is already won, in
    /// which case the acquisition still succeeds (the paper's `Enter`
    /// semantics) — the guard is returned and the caller decides.
    pub fn lock_abortable(
        &mut self,
        signal: &(impl AbortSignal + ?Sized),
    ) -> Option<MutexGuard<'_, 'm, T, P>> {
        if self
            .mutex
            .lock
            .enter_core(&self.mutex.mem, self.pid, signal, &self.mutex.probe)
            .entered()
        {
            Some(MutexGuard {
                handle: self,
                _marker: std::marker::PhantomData,
            })
        } else {
            None
        }
    }

    /// Acquire unless `timeout` elapses first.
    pub fn try_lock_for(&mut self, timeout: Duration) -> Option<MutexGuard<'_, 'm, T, P>> {
        self.try_lock_until(timeout_deadline(timeout))
    }

    /// Acquire unless the deadline passes first.
    pub fn try_lock_until(&mut self, deadline: Instant) -> Option<MutexGuard<'_, 'm, T, P>> {
        self.lock_abortable(&deadline_signal(deadline))
    }

    /// One near-immediate attempt: give up as soon as the lock is
    /// observed held. (The paper's `Enter` with the pre-fired
    /// [`Immediate`] signal: if the lock is handed over before the
    /// first wait, the acquisition still succeeds.)
    pub fn try_lock(&mut self) -> Option<MutexGuard<'_, 'm, T, P>> {
        self.lock_abortable(&Immediate)
    }

    /// Acquire the lock *when `pred` holds over the protected value* —
    /// the conditional critical section of nsync's `LockWhen` /
    /// abseil's `Mutex::LockWhen`.
    ///
    /// While `pred` is false the thread parks (spin-then-park); each
    /// unlock evaluates the registered predicate under the lock and
    /// wakes this waiter only once the predicate can succeed (under the
    /// default [`WakePolicy::Evaluate`]). On return the guard is held
    /// and `pred(&*guard)` is true.
    ///
    /// `pred` must be pure with respect to the protected value (it runs
    /// under the lock, possibly on *other* threads' unlock paths — that
    /// is why it must be `Sync`), and should be cheap: every unlocker
    /// pays its cost while holding the lock.
    pub fn lock_when<F>(&mut self, pred: F) -> MutexGuard<'_, 'm, T, P>
    where
        F: Fn(&T) -> bool + Sync,
    {
        let r = ccs::lock_when_raw(self.mutex, self.pid, &pred, &Limit::<NeverAbort>::Forever);
        debug_assert!(r.is_ok(), "unbounded lock_when cannot fail");
        MutexGuard {
            handle: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// [`lock_when`](Self::lock_when) with a timeout: gives up with
    /// [`AbortReason::Deadline`] if `pred` did not hold (with the lock
    /// acquirable) within `timeout`.
    ///
    /// The deadline is injected as the lock's abort signal, so a
    /// deadline that fires while this thread is queued *inside* the
    /// lock is honoured within a bounded number of its own steps — the
    /// paper's bounded-RMR abort path, not a post-hoc check.
    pub fn lock_when_for<F>(
        &mut self,
        pred: F,
        timeout: Duration,
    ) -> Result<MutexGuard<'_, 'm, T, P>, AbortReason>
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.lock_when_until(pred, timeout_deadline(timeout))
    }

    /// [`lock_when`](Self::lock_when) with an absolute deadline; see
    /// [`lock_when_for`](Self::lock_when_for).
    pub fn lock_when_until<F>(
        &mut self,
        pred: F,
        deadline: Instant,
    ) -> Result<MutexGuard<'_, 'm, T, P>, AbortReason>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ccs::lock_when_raw(
            self.mutex,
            self.pid,
            &pred,
            &Limit::<NeverAbort>::Until(deadline),
        )?;
        Ok(MutexGuard {
            handle: self,
            _marker: std::marker::PhantomData,
        })
    }

    /// [`lock_when`](Self::lock_when) with caller-side cancellation:
    /// gives up with [`AbortReason::Caller`] once `signal` fires. Pair
    /// with an [`AbortFlag`] shared with a controller thread.
    pub fn lock_when_abortable<F>(
        &mut self,
        pred: F,
        signal: &(impl AbortSignal + ?Sized),
    ) -> Result<MutexGuard<'_, 'm, T, P>, AbortReason>
    where
        F: Fn(&T) -> bool + Sync,
    {
        ccs::lock_when_raw(self.mutex, self.pid, &pred, &Limit::Signal(signal))?;
        Ok(MutexGuard {
            handle: self,
            _marker: std::marker::PhantomData,
        })
    }
}

/// RAII guard: the lock is held while the guard lives, released on drop.
///
/// Like `std::sync::MutexGuard`: `Sync` only when `T: Sync` (sharing
/// `&MutexGuard` hands out `&T` across threads), and not `Send` (the
/// guard releases through the per-thread handle it borrows).
pub struct MutexGuard<'h, 'm, T: ?Sized, P: Probe = NoProbe> {
    handle: &'h mut MutexHandle<'m, T, P>,
    /// Suppresses the auto `Send`/`Sync` impls, which would otherwise be
    /// derived from the handle reference and wrongly make the guard
    /// `Sync` for any `T: Send` (unsound for `T = Cell<_>` etc.).
    _marker: std::marker::PhantomData<*const ()>,
}

// Safety: `&MutexGuard<T>` only exposes `&T` (plus lock bookkeeping that
// is itself thread-safe), so sharing requires exactly `T: Sync`.
unsafe impl<T: ?Sized + Sync, P: Probe> Sync for MutexGuard<'_, '_, T, P> {}

impl<T: ?Sized, P: Probe> Deref for MutexGuard<'_, '_, T, P> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: we hold the lock.
        unsafe { &*self.handle.mutex.data.get() }
    }
}

impl<T: ?Sized, P: Probe> DerefMut for MutexGuard<'_, '_, T, P> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: we hold the lock exclusively.
        unsafe { &mut *self.handle.mutex.data.get() }
    }
}

impl<'m, T: ?Sized, P: Probe> MutexGuard<'_, 'm, T, P> {
    /// Atomically release the lock, wait until `pred` holds over the
    /// protected value, and re-acquire — nsync's `Await` / abseil's
    /// `Mutex::Await`, for re-waiting in the middle of a critical
    /// section. On return the lock is held (same guard) and
    /// `pred(&*guard)` is true.
    ///
    /// If `pred` already holds, returns immediately without releasing.
    pub fn await_when<F>(&mut self, pred: F)
    where
        F: Fn(&T) -> bool + Sync,
    {
        let m = self.handle.mutex;
        let r = ccs::await_when_raw(m, self.handle.pid, &pred, &Limit::<NeverAbort>::Forever);
        debug_assert!(r.is_ok(), "unbounded await_when cannot fail");
    }

    /// [`await_when`](Self::await_when) with a timeout (abseil
    /// `AwaitWithTimeout` semantics): waits for `pred` at most
    /// `timeout`, then re-acquires the lock *unconditionally* and
    /// returns whether `pred` held at the final, lock-held check. The
    /// lock is held on return either way — the guard stays valid.
    pub fn await_when_for<F>(&mut self, pred: F, timeout: Duration) -> bool
    where
        F: Fn(&T) -> bool + Sync,
    {
        self.await_when_until(pred, timeout_deadline(timeout))
    }

    /// [`await_when_for`](Self::await_when_for) with an absolute
    /// deadline.
    pub fn await_when_until<F>(&mut self, pred: F, deadline: Instant) -> bool
    where
        F: Fn(&T) -> bool + Sync,
    {
        let m = self.handle.mutex;
        ccs::await_when_raw(
            m,
            self.handle.pid,
            &pred,
            &Limit::<NeverAbort>::Until(deadline),
        )
        .is_ok()
    }
}

impl<T: ?Sized, P: Probe> Drop for MutexGuard<'_, '_, T, P> {
    fn drop(&mut self) {
        self.handle.mutex.unlock_with_eval(self.handle.pid);
    }
}

impl<T: ?Sized + fmt::Debug, P: Probe> fmt::Debug for MutexGuard<'_, '_, T, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("MutexGuard").field(&&**self).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn basic_lock_unlock_mutates_data() {
        let m = AbortableMutex::builder(vec![1, 2]).capacity(2).build();
        let mut h = m.handle();
        h.lock().push(3);
        assert_eq!(*h.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn counter_integrity_under_real_threads() {
        let m = Arc::new(AbortableMutex::builder(0u64).capacity(9).build());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    let mut h = m.handle();
                    for _ in 0..500 {
                        *h.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut h = m.handle();
        assert_eq!(*h.lock(), 4000);
    }

    #[test]
    fn timeout_abandons_a_held_lock() {
        let m = AbortableMutex::builder(()).capacity(2).build();
        let mut h0 = m.handle();
        let mut h1 = m.handle();
        let _g = h0.lock();
        let start = Instant::now();
        assert!(h1.try_lock_for(Duration::from_millis(20)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn flag_cancellation_unblocks_a_waiter() {
        let m = Arc::new(AbortableMutex::builder(0u32).capacity(2).build());
        let flag = AbortFlag::new();
        let waiting = Arc::new(AtomicBool::new(false));
        let mut holder = m.handle();
        let g = holder.lock();
        let t = {
            let m = Arc::clone(&m);
            let flag = flag.clone();
            let waiting = Arc::clone(&waiting);
            std::thread::spawn(move || {
                let mut h = m.handle();
                waiting.store(true, Ordering::SeqCst);
                let aborted = h.lock_abortable(&flag).is_none();
                aborted
            })
        };
        while !waiting.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(5));
        flag.set();
        assert!(t.join().unwrap(), "waiter should have aborted");
        drop(g);
    }

    #[test]
    fn try_lock_fails_fast_when_held_and_succeeds_when_free() {
        let m = AbortableMutex::builder(()).capacity(3).build();
        let mut a = m.handle();
        let mut b = m.handle();
        {
            let _g = a.lock();
            assert!(b.try_lock().is_none());
        }
        assert!(b.try_lock().is_some());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn over_registration_panics() {
        let m = AbortableMutex::builder(()).capacity(1).build();
        let _a = m.handle();
        let _b = m.handle();
    }

    #[test]
    fn contended_timed_locking_with_many_threads() {
        let m = Arc::new(AbortableMutex::builder(0u64).capacity(8).build());
        let acquired = Arc::new(AtomicUsize::new(0));
        let aborted = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                let acquired = Arc::clone(&acquired);
                let aborted = Arc::clone(&aborted);
                std::thread::spawn(move || {
                    let mut h = m.handle();
                    for _ in 0..100 {
                        match h.try_lock_for(Duration::from_micros(200)) {
                            Some(mut g) => {
                                *g += 1;
                                acquired.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                aborted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total = acquired.load(Ordering::Relaxed) as u64;
        let m = Arc::try_unwrap(m).expect("all threads joined");
        assert_eq!(m.into_inner(), total, "every acquisition incremented once");
        assert_eq!(
            acquired.load(Ordering::Relaxed) + aborted.load(Ordering::Relaxed),
            800
        );
    }

    #[test]
    fn debug_and_default_impls() {
        let m: AbortableMutex<u8> = AbortableMutex::default();
        assert!(format!("{m:?}").contains("AbortableMutex"));
        assert_eq!(m.capacity(), DEFAULT_CAPACITY);
        assert!(m.shared_words() > 0);
        let m2: AbortableMutex<u8> = 7u8.into();
        let mut h = m2.handle();
        assert_eq!(*h.lock(), 7);
    }

    #[test]
    fn builder_configures_capacity_and_branching() {
        let narrow = AbortableMutex::builder(()).capacity(4).branching(2).build();
        let wide = AbortableMutex::builder(())
            .capacity(4)
            .branching(64)
            .build();
        assert_eq!(narrow.capacity(), 4);
        // A binary tree over the same leaves needs more words than a
        // 64-ary one.
        assert!(narrow.shared_words() > wide.shared_words());
        let mut h = narrow.handle();
        let _g = h.lock();
    }

    #[test]
    fn builder_probe_observes_passages() {
        let stats = sal_obs::PassageStats::new();
        let log = sal_obs::EventLog::new(256);
        let m = AbortableMutex::builder(0u64)
            .capacity(2)
            .probe((stats.clone(), log.clone()))
            .build();
        let mut h = m.handle();
        for _ in 0..3 {
            *h.lock() += 1;
        }
        drop(h.try_lock().expect("uncontended try_lock succeeds"));
        assert_eq!(stats.total_entered(), 4);
        // Raw atomics report no RMR counts — lifecycle is still exact.
        assert!(stats.records().iter().all(|r| r.rmrs == 0 && r.entered));
        let events = log.events();
        let begins = events
            .iter()
            .filter(|e| e.kind == sal_obs::ObsEventKind::EnterBegin)
            .count();
        let exits = events
            .iter()
            .filter(|e| e.kind == sal_obs::ObsEventKind::CsExit)
            .count();
        assert_eq!((begins, exits), (4, 4));
        assert_eq!(m.probe().0.total_entered(), 4);
    }

    #[test]
    fn aborted_attempts_are_recorded_by_the_probe() {
        let stats = sal_obs::PassageStats::new();
        let m = AbortableMutex::builder(())
            .capacity(2)
            .probe(stats.clone())
            .build();
        let mut a = m.handle();
        let mut b = m.handle();
        let g = a.lock();
        assert!(b.try_lock().is_none());
        drop(g);
        let summary = stats.summary();
        assert_eq!(summary.entered, 1);
        assert_eq!(summary.aborted, 1);
    }
}

#[cfg(test)]
mod marker_tests {
    use super::*;

    fn assert_sync<T: Sync>() {}
    fn assert_send<T: Send>() {}

    #[test]
    fn auto_trait_bounds_match_std_mutex() {
        // The mutex itself: Send + Sync for T: Send, like std.
        assert_send::<AbortableMutex<std::cell::Cell<u64>>>();
        assert_sync::<AbortableMutex<std::cell::Cell<u64>>>();
        // The guard: Sync requires T: Sync (manual impl); a guard over a
        // Send-but-not-Sync T must NOT be shareable — enforced by the
        // PhantomData suppressor + the T: Sync bound on the unsafe impl.
        assert_sync::<MutexGuard<'static, 'static, u64>>();
        // (A compile-fail check for `MutexGuard<Cell<u64>>: Sync` lives
        // in the doc comment; negative impls aren't testable on stable.)
    }
}
