//! Future cancellation **is** the paper's bounded abort.
//!
//! ```text
//! cargo run --release -p sal-bench --example async_cancellation
//! ```
//!
//! Two demonstrations:
//!
//! 1. **Manual drop.** A `lock()` future is polled against a held lock
//!    (pending), then dropped. The drop runs the abort path — the probe
//!    shows the cancelled passage cost a small, bounded number of
//!    shared-memory operations, not "wait for the lock, then give it
//!    back".
//! 2. **Timeout storm.** Hundreds of tasks on the mini-executor race
//!    tiny deadlines against real contention; aborted tasks resolve to
//!    `Err(Deadline)`, entered tasks increment the protected counter,
//!    and afterwards nothing has leaked: every pid is back in the pool.

use sal_obs::PassageStats;
use sal_runtime::executor::Executor;
use sal_sync::{AbortReason, AsyncAbortableMutex};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::Duration;

fn noop_waker() -> Waker {
    fn vt() -> &'static RawWakerVTable {
        &RawWakerVTable::new(|d| RawWaker::new(d, vt()), |_| {}, |_| {}, |_| {})
    }
    // Safety: every vtable entry ignores its data pointer.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), vt())) }
}

fn poll_once<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
    Pin::new(fut).poll(&mut Context::from_waker(&noop_waker()))
}

fn main() {
    // --- 1. Dropping a pending lock future runs a bounded abort. ----
    let stats = PassageStats::new();
    let m = AsyncAbortableMutex::builder(0u64)
        .capacity(8)
        .probe(stats.clone())
        .build_async();

    let holder = m.try_lock().expect("lock starts free");
    let mut fut = m.lock();
    assert!(poll_once(&mut fut).is_pending(), "the lock is held");
    drop(fut); // cancellation: the future leaves the queue *now*
    drop(holder);

    let records = stats.records();
    let cancelled = records
        .iter()
        .find(|r| !r.entered)
        .expect("the dropped future left an aborted passage record");
    println!(
        "cancelled passage: {} shared-memory ops (bounded abort; \
         the holder never released)",
        cancelled.ops
    );
    assert!(cancelled.ops <= 300);
    assert_eq!(m.free_pids(), 8, "nothing leaked");

    // --- 2. A timeout storm on the executor leaks nothing. ----------
    let m = Arc::new(AsyncAbortableMutex::builder(0u64).capacity(4).build_async());
    let entered = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let ex = Executor::new();
    for i in 0..800u64 {
        let m = Arc::clone(&m);
        let entered = Arc::clone(&entered);
        let aborted = Arc::clone(&aborted);
        ex.spawn(async move {
            match m.lock_timeout(Duration::from_micros(i % 40)).await {
                Ok(mut g) => {
                    *g += 1;
                    entered.fetch_add(1, Ordering::Relaxed);
                }
                Err(AbortReason::Deadline) => {
                    aborted.fetch_add(1, Ordering::Relaxed);
                }
                Err(r) => unreachable!("unexpected abort reason {r:?}"),
            }
        });
    }
    ex.run(2);

    let entered = entered.load(Ordering::Relaxed);
    let aborted = aborted.load(Ordering::Relaxed);
    println!("storm: {entered} entered, {aborted} aborted by deadline (of 800 tasks)");
    assert_eq!(entered + aborted, 800);
    assert_eq!(m.free_pids(), 4, "every pid returned to the pool");
    let m = Arc::try_unwrap(m).expect("executor drained");
    assert_eq!(
        m.into_inner(),
        entered,
        "each entered task incremented once"
    );
    println!("ok: cancellation cost is bounded and nothing leaks");
}
