//! Use case 2 of the paper's introduction: "database systems use aborts
//! to recover from deadlocks."
//!
//! Two transfer agents repeatedly move money between two accounts, each
//! locking the two account mutexes in *opposite* order — the textbook
//! deadlock. With ordinary blocking locks this wedges immediately; with
//! abortable locks each agent bounds its wait for the second lock,
//! aborts on timeout, releases the first lock, backs off, and retries.
//! Every transfer eventually commits and the total balance is conserved.
//!
//! Run with: `cargo run --example deadlock_recovery`

use sal_sync::AbortableMutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TRANSFERS_PER_AGENT: usize = 50;

fn main() {
    let account_a = Arc::new(AbortableMutex::builder(1_000i64).capacity(3).build());
    let account_b = Arc::new(AbortableMutex::builder(1_000i64).capacity(3).build());
    let deadlocks_broken = Arc::new(AtomicUsize::new(0));

    let agents: Vec<_> = (0..2)
        .map(|agent| {
            let account_a = Arc::clone(&account_a);
            let account_b = Arc::clone(&account_b);
            let deadlocks_broken = Arc::clone(&deadlocks_broken);
            std::thread::spawn(move || {
                let mut ha = account_a.handle();
                let mut hb = account_b.handle();
                let mut committed = 0usize;
                let mut backoff_us = 50u64;
                while committed < TRANSFERS_PER_AGENT {
                    // Agent 0 locks A then B; agent 1 locks B then A.
                    // Closure over both handles in either order needs a
                    // tiny dance because the guards borrow the handles.
                    let ok = if agent == 0 {
                        let mut ga = ha.lock();
                        // Hold the first lock a moment — this widens the
                        // race window so the classic deadlock actually
                        // materializes and must be broken by aborting.
                        std::thread::sleep(Duration::from_micros(100));
                        match hb.try_lock_for(Duration::from_micros(200)) {
                            Some(mut gb) => {
                                *ga -= 10;
                                *gb += 10;
                                true
                            }
                            None => false,
                        }
                    } else {
                        let mut gb = hb.lock();
                        std::thread::sleep(Duration::from_micros(100));
                        match ha.try_lock_for(Duration::from_micros(200)) {
                            Some(mut ga) => {
                                *gb -= 10;
                                *ga += 10;
                                true
                            }
                            None => false,
                        }
                    };
                    if ok {
                        committed += 1;
                        backoff_us = 50;
                    } else {
                        // Deadlock suspected: we held one lock while the
                        // peer held the other. The abort released our
                        // claim on the second lock; dropping the first
                        // guard (already happened at scope end) lets the
                        // peer finish. Back off and retry.
                        deadlocks_broken.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(Duration::from_micros(backoff_us));
                        backoff_us = (backoff_us * 2).min(2_000);
                    }
                }
                committed
            })
        })
        .collect();

    let total: usize = agents.into_iter().map(|a| a.join().unwrap()).sum();
    let balance_a = *account_a.handle().lock();
    let balance_b = *account_b.handle().lock();
    println!("committed {total} transfers");
    println!(
        "deadlocks broken by aborting the second acquisition: {}",
        deadlocks_broken.load(Ordering::Relaxed)
    );
    println!(
        "balances: A = {balance_a}, B = {balance_b} (sum {})",
        balance_a + balance_b
    );
    assert_eq!(balance_a + balance_b, 2_000, "money was conserved");
    assert_eq!(total, 2 * TRANSFERS_PER_AGENT);
}
