//! Use case 3 of the paper's introduction: "low-priority processes can
//! abort to expedite lock handoff to a high-priority process."
//!
//! A crowd of low-priority workers churns on a shared resource. When the
//! high-priority thread raises a flag and queues up, every low-priority
//! *waiter* aborts its acquisition attempt (clearing the queue ahead of
//! the VIP) and backs off until the VIP is done. We measure how long the
//! VIP waits with and without the courtesy aborts.
//!
//! Run with: `cargo run --example priority_handoff`

use sal_sync::{AbortFlag, AbortableMutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LOW_PRIO_WORKERS: usize = 6;

fn vip_wait(courteous: bool) -> Duration {
    let resource = Arc::new(
        AbortableMutex::builder(0u64)
            .capacity(LOW_PRIO_WORKERS + 1)
            .build(),
    );
    let vip_wants_it = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = (0..LOW_PRIO_WORKERS)
        .map(|_| {
            let resource = Arc::clone(&resource);
            let vip_wants_it = Arc::clone(&vip_wants_it);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut handle = resource.handle();
                // A low-priority waiter aborts whenever the VIP flag is
                // up (courteous mode) — the paper's abort signal is
                // exactly this externally-controlled condition.
                let courtesy = AbortFlag::new();
                while !stop.load(Ordering::Relaxed) {
                    if courteous {
                        if vip_wants_it.load(Ordering::Relaxed) {
                            courtesy.set();
                        } else {
                            courtesy.clear();
                        }
                        match handle.lock_abortable(&courtesy) {
                            Some(_guard) => {
                                // hold the resource briefly
                                std::thread::sleep(Duration::from_micros(300));
                            }
                            None => {
                                // stepped aside for the VIP
                                while vip_wants_it.load(Ordering::Relaxed)
                                    && !stop.load(Ordering::Relaxed)
                                {
                                    std::thread::yield_now();
                                }
                            }
                        }
                    } else {
                        let _guard = handle.lock();
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
            })
        })
        .collect();

    // Let the workers saturate the lock, then measure the VIP.
    std::thread::sleep(Duration::from_millis(30));
    let mut vip = resource.handle();
    vip_wants_it.store(true, Ordering::Relaxed);
    let start = Instant::now();
    let guard = vip.lock();
    let waited = start.elapsed();
    drop(guard);
    vip_wants_it.store(false, Ordering::Relaxed);

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    waited
}

fn main() {
    let rude = vip_wait(false);
    let courteous = vip_wait(true);
    println!("VIP wait with blocking low-priority workers: {rude:?}");
    println!("VIP wait when waiters abort in its favour:   {courteous:?}");
    println!(
        "courtesy aborts cut the VIP's wait{}",
        if courteous < rude {
            ""
        } else {
            " (noisy run — try again)"
        }
    );
}
