//! Quickstart: the abortable mutex in five minutes.
//!
//! Demonstrates the three acquisition modes of [`sal_sync::AbortableMutex`]:
//! blocking, timed (try-for), and externally cancellable — the paper's
//! `Enter`/abort-signal interface as a practical Rust API.
//!
//! Run with: `cargo run --example quickstart`

use sal_sync::{AbortFlag, AbortableMutex};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A mutex guarding a value, sized for 4 participating threads.
    // Under the hood: the PODC'18 bounded long-lived abortable lock over
    // plain AtomicU64s, O(threads²) words, starvation-free.
    let counter = Arc::new(AbortableMutex::builder(0u64).capacity(8).build());

    // --- 1. Blocking acquisition, std::sync::Mutex style ---------------
    {
        let mut handle = counter.handle();
        *handle.lock() += 1;
        println!("blocking lock: counter = {}", *handle.lock());
    }

    // --- 2. Timed acquisition ------------------------------------------
    // Two threads race; the loser's attempt expires instead of blocking
    // forever.
    let holder = {
        let counter = Arc::clone(&counter);
        std::thread::spawn(move || {
            let mut handle = counter.handle();
            let mut guard = handle.lock();
            *guard += 1;
            // Hold the lock long enough for the other thread to time out.
            std::thread::sleep(Duration::from_millis(100));
            drop(guard);
            println!("holder: released after 100ms");
        })
    };
    std::thread::sleep(Duration::from_millis(10)); // let the holder win
    {
        let mut handle = counter.handle();
        match handle.try_lock_for(Duration::from_millis(20)) {
            Some(_) => println!("timed lock: unexpectedly acquired"),
            None => println!("timed lock: gave up after 20ms — doing something else instead"),
        };
    }
    holder.join().unwrap();

    // --- 3. External cancellation ---------------------------------------
    // A supervisor cancels a worker's acquisition attempt.
    let flag = AbortFlag::new();
    let worker = {
        let counter = Arc::clone(&counter);
        let flag = flag.clone();
        std::thread::spawn(move || {
            let mut handle = counter.handle();
            // The lock is free here, so this acquires immediately; to see
            // a real cancellation, run the deadlock_recovery example.
            match handle.lock_abortable(&flag) {
                Some(mut guard) => {
                    *guard += 1;
                    println!("worker: acquired under a cancellable attempt");
                }
                None => println!("worker: cancelled by the supervisor"),
            };
        })
    };
    worker.join().unwrap();
    flag.set(); // (too late to matter — just showing the API)

    let mut handle = counter.handle();
    println!("final counter = {}", *handle.lock());
}
