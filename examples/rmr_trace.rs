//! Watch the algorithm pay (and avoid) remote memory references.
//!
//! Runs the paper's one-shot lock inside the deterministic simulator
//! under the exact CC cost model and prints, per process: the passage
//! outcome, the RMRs it cost, and the event timeline — first with no
//! aborts (everyone pays O(1)), then with an abort storm (completing
//! passages pay O(log_W A)).
//!
//! Run with: `cargo run --example rmr_trace`

use sal_bench::{build_lock, LockKind};
use sal_runtime::{run_one_shot, EventKind, ProcPlan, RandomSchedule, WorkloadSpec};

fn run(n: usize, aborters: usize, label: &str) {
    println!("\n--- {label} (N = {n}, {aborters} aborters, B = 8) ---");
    let built = build_lock(LockKind::OneShot { b: 8 }, n, n);
    let mut plans = vec![ProcPlan::normal(1)];
    plans.extend(vec![ProcPlan::aborter(1, 6 * n as u64); aborters]);
    plans.extend(vec![ProcPlan::normal(1); n - 1 - aborters]);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 1,
        max_steps: 5_000_000,
        lease: sal_runtime::default_lease(),
    };
    let report = run_one_shot(
        &*built.lock,
        &built.mem,
        built.cs_word,
        &spec,
        Box::new(RandomSchedule::seeded(2024)),
    )
    .expect("simulation failed");

    report.assert_safe();
    let mut passages = report.passages.clone();
    passages.sort_by_key(|p| p.pid);
    for p in &passages {
        println!(
            "  process {:>2}: {} in {:>3} RMRs",
            p.pid,
            if p.entered {
                "entered CS"
            } else {
                "aborted   "
            },
            p.rmrs
        );
    }
    println!(
        "  => max complete-passage cost: {} RMRs | max aborted-attempt cost: {} RMRs | {} steps total",
        report.max_entered_rmrs(),
        report.max_aborted_rmrs(),
        report.steps
    );
    println!(
        "  safety: mutual exclusion {}, FCFS {}",
        if report.mutex_check.is_ok() {
            "held"
        } else {
            "VIOLATED"
        },
        if report.fcfs_check.is_ok() {
            "held"
        } else {
            "VIOLATED"
        },
    );
}

fn main() {
    println!("RMR accounting demo — the paper's one-shot abortable lock (Figure 1 + Figure 3)");

    // Paper claim (abstract): "if no process aborts during a passage,
    // its RMR cost is O(1)".
    run(16, 0, "no aborts: every passage is O(1)");

    // Paper claim (Theorem 2): a complete passage costs O(log_W A_i).
    run(16, 13, "abort storm: completing passages pay O(log_W A)");

    // Bonus: a peek at the raw event log of a tiny run.
    println!("\n--- event timeline (N = 3, process 1 aborts) ---");
    let built = build_lock(LockKind::OneShot { b: 2 }, 3, 3);
    let spec = WorkloadSpec {
        plans: vec![
            ProcPlan::normal(1),
            ProcPlan::aborter(1, 12),
            ProcPlan::normal(1),
        ],
        cs_ops: 1,
        max_steps: 100_000,
        lease: sal_runtime::default_lease(),
    };
    let report = run_one_shot(
        &*built.lock,
        &built.mem,
        built.cs_word,
        &spec,
        Box::new(RandomSchedule::seeded(7)),
    )
    .expect("simulation failed");
    for e in &report.events {
        let what = match e.kind {
            EventKind::EnterStart => "invokes Enter()".to_string(),
            EventKind::Doorway(t) => format!("completes the doorway with ticket {t}"),
            EventKind::CsEnter => "enters the critical section".to_string(),
            EventKind::CsLeave => "leaves the critical section".to_string(),
            EventKind::ExitDone => "completes Exit()".to_string(),
            EventKind::Aborted => "aborts its attempt".to_string(),
            EventKind::Custom(name, v) => format!("{name} = {v}"),
        };
        println!("  step {:>4}: process {} {}", e.step, e.pid, what);
    }
}
