//! Figure 2, interactively: the three `FindNext(p)` scenarios of the
//! `Tree` data structure, plus the Figure-4 sidestep, on a live tree
//! with RMR accounting.
//!
//! Run with: `cargo run --example tree_scenarios`

use sal_core::tree::Tree;
use sal_memory::{Mem, MemoryBuilder, RmrProbe};

fn fresh(n: usize, b: usize) -> (Tree, sal_memory::CcMemory) {
    let mut builder = MemoryBuilder::new();
    let tree = Tree::layout(&mut builder, n, b);
    (tree, builder.build_cc(n))
}

fn main() {
    println!(
        "The Tree of §4 (Figure 3): a {}-leaf, branching-4 instance\n",
        16
    );

    // Scenario (a): plain successor search.
    let (tree, mem) = fresh(16, 4);
    println!("scenario (a) — normal handoff:");
    println!(
        "  initially every slot is live; FindNext(5) = {:?}",
        tree.find_next(&mem, 0, 5)
    );
    for q in [6u64, 7, 8] {
        tree.remove(&mem, q as usize, q);
        println!(
            "  after Remove({q}):          FindNext(5) = {:?}",
            tree.find_next(&mem, 0, 5)
        );
    }

    // Scenario (b): the queue exhausts — ⊥.
    let (tree, mem) = fresh(8, 2);
    println!("\nscenario (b) — ⊥ (no successor):");
    for q in 3..8u64 {
        tree.remove(&mem, q as usize, q);
    }
    println!(
        "  slots 3..8 abandoned; FindNext(2) = {:?} → the exiting process simply stops; \
         the lock is exhausted",
        tree.find_next(&mem, 0, 2)
    );

    // Scenario (c): crossing paths with an in-flight Remove — ⊤.
    // Sequentially we can only show the completed state; the bench
    // binary (`figures -- fig2`) drives the true interleaving through
    // the deterministic scheduler. Here we show the *invariant* that
    // makes ⊤ safe: the Remove that empties a node takes over the
    // handoff responsibility.
    let (tree, mem) = fresh(8, 2);
    println!("\nscenario (c) — ⊤ (crossed paths):");
    println!("  when FindNext descends into a node that a concurrent Remove has just emptied,");
    println!("  it returns Top and the *remover* re-runs SignalNext on the exiter's behalf");
    println!("  (drive the real interleaving: cargo run -p sal-bench --bin figures -- fig2)");
    let _ = tree.find_next(&mem, 0, 0);

    // Figure 4: the adaptive sidestep.
    println!("\nFigure 4 — the adaptive ascent sidestep (N = 4096, B = 2):");
    let (tree, mem) = fresh(4096, 2);
    let p = 2047; // rightmost leaf of the left half
    let probe = RmrProbe::start(&mem, 0);
    let r = tree.find_next(&mem, 0, p);
    let plain = probe.rmrs(&mem);
    let probe = RmrProbe::start(&mem, 1);
    let r2 = tree.adaptive_find_next(&mem, 1, p);
    let adaptive = probe.rmrs(&mem);
    assert_eq!(r, r2);
    println!("  FindNext({p}) = {r:?}");
    println!("  plain ascent (Algorithm 4.1):    {plain:>3} RMRs — climbs to the root and back");
    println!(
        "  adaptive ascent (Algorithm 4.3): {adaptive:>3} RMRs — sidesteps to the right cousin"
    );

    // And the adaptivity claim: cost tracks the number of aborters.
    println!("\nClaim 21 — adaptive cost tracks A (number of aborters), N = 4096:");
    let (tree, mem) = fresh(4096, 2);
    for k in [1usize, 3, 5, 7, 9] {
        let a = (1usize << k) - 1;
        for q in 1..=a {
            if !tree.is_removed(&mem, 0, q as u64) {
                tree.remove(&mem, 0, q as u64);
            }
        }
        let probe = RmrProbe::start(&mem, 0);
        let r = tree.adaptive_find_next(&mem, 0, 0);
        println!(
            "  A = {a:>4}: AdaptiveFindNext(0) = {r:?} in {:>2} RMRs",
            probe.rmrs(&mem)
        );
    }
    let _ = mem.total_rmrs();
}
