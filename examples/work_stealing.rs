//! Use case 1 of the paper's introduction: "a process blocked on a lock
//! may wish to abandon its work chunk and switch to working on a
//! different work chunk not subjected to serialization."
//!
//! A pool of workers processes a bag of chunks, each chunk guarded by its
//! own abortable mutex. When a worker finds a chunk's lock contended it
//! *aborts the acquisition after a short patience window* and moves on to
//! another chunk, instead of convoying behind the current owner. Every
//! chunk still gets processed exactly the intended number of times —
//! aborting an acquisition has no effect on the protected data.
//!
//! Run with: `cargo run --example work_stealing`

use sal_sync::AbortableMutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CHUNKS: usize = 16;
const WORKERS: usize = 4;
const UNITS_PER_CHUNK: usize = 12;

struct Chunk {
    id: usize,
    /// Work units remaining.
    mutex: AbortableMutex<usize>,
}

fn main() {
    let chunks: Arc<Vec<Chunk>> = Arc::new(
        (0..CHUNKS)
            .map(|id| Chunk {
                id,
                mutex: AbortableMutex::builder(UNITS_PER_CHUNK)
                    .capacity(WORKERS + 1)
                    .build(),
            })
            .collect(),
    );
    let remaining = Arc::new(AtomicUsize::new(CHUNKS * UNITS_PER_CHUNK));
    let steals = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let chunks = Arc::clone(&chunks);
            let remaining = Arc::clone(&remaining);
            let steals = Arc::clone(&steals);
            std::thread::spawn(move || {
                // Each worker pre-registers one handle per chunk.
                let mut handles: Vec<_> = chunks.iter().map(|c| c.mutex.handle()).collect();
                let mut cursor = w; // start at different chunks
                let mut done_units = 0usize;
                while remaining.load(Ordering::Relaxed) > 0 {
                    let idx = cursor % CHUNKS;
                    cursor += 1;
                    // Short patience: if the chunk is busy, steal away to
                    // the next one rather than queueing.
                    match handles[idx].try_lock_for(Duration::from_micros(50)) {
                        Some(mut units) => {
                            if *units > 0 {
                                *units -= 1;
                                // simulate the actual work
                                std::thread::sleep(Duration::from_micros(100));
                                remaining.fetch_sub(1, Ordering::Relaxed);
                                done_units += 1;
                            }
                        }
                        None => {
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                (w, done_units)
            })
        })
        .collect();

    for h in workers {
        let (w, units) = h.join().unwrap();
        println!("worker {w}: completed {units} units");
    }

    // Verify no unit was lost or double-counted despite all the aborts.
    let leftover: usize = chunks
        .iter()
        .map(|c| {
            let mut h = c.mutex.handle();
            let v = *h.lock();
            assert_eq!(v, 0, "chunk {} still has {} units", c.id, v);
            v
        })
        .sum();
    println!(
        "all {} units processed (leftover {leftover}); {} contended acquisitions were \
         abandoned and redirected to other chunks",
        CHUNKS * UNITS_PER_CHUNK,
        steals.load(Ordering::Relaxed),
    );
}
