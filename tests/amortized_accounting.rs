//! Cross-validation of the *amortized* accounting layer against the
//! memory model: [`sal_obs::AmortizedStats`] — the run-level aggregate
//! that the Jayanti–Jayanti constant-amortized-RMR claim is stated
//! over — must agree **bit-exactly** with the RMR counters kept by the
//! memory itself (`CcMemory` and `DsmMemory`), on scripted schedules
//! and seeded sweeps, with and without aborters.
//!
//! Three layers are pinned down:
//! * the aggregate is a faithful fold of the per-passage records
//!   (totals, passage counts, max single-passage debt, ratio);
//! * the fold equals the memory's own ground truth, in both cost
//!   models;
//! * the fan-in paths (`merge_from` at the stats level and at the
//!   aggregate level) and the JSON codec preserve every bit.

use sal_core::long_lived::JjLock;
use sal_core::one_shot::OneShotLock;
use sal_memory::Mem;
use sal_memory::MemoryBuilder;
use sal_obs::{AmortizedStats, Json, PassageStats, ToJson};
use sal_runtime::{
    run_lock_probed, run_one_shot_probed, ProcPlan, RandomSchedule, RoundRobin, SchedulePolicy,
    Scripted, WorkloadSpec,
};

/// The invariant under test, checked from first principles: the
/// aggregate must be *derivable from the records* and the records must
/// *sum to the memory's counters*.
fn assert_amortized_exact(stats: &PassageStats, mem: &dyn Mem, label: &str) {
    let a = stats.amortized();
    let records = stats.records();

    // Aggregate ↔ per-passage records.
    let total: u64 = records.iter().map(|r| r.rmrs).sum();
    let entered = records.iter().filter(|r| r.entered).count() as u64;
    let max = records.iter().map(|r| r.rmrs).max().unwrap_or(0);
    assert_eq!(a.total_rmrs, total, "{label}: total_rmrs vs record sum");
    assert_eq!(a.passages, records.len() as u64, "{label}: passage count");
    assert_eq!(a.entered, entered, "{label}: entered count");
    assert_eq!(a.aborted, a.passages - entered, "{label}: aborted count");
    assert_eq!(a.max_passage_rmrs, max, "{label}: max single-passage debt");
    let ratio = if a.passages == 0 {
        0.0
    } else {
        a.total_rmrs as f64 / a.passages as f64
    };
    assert!(
        a.amortized_rmrs == ratio,
        "{label}: amortized ratio not the exact quotient"
    );

    // Aggregate ↔ memory ground truth, bit for bit.
    assert_eq!(
        a.total_rmrs,
        mem.total_rmrs(),
        "{label}: aggregate diverges from the memory's own RMR counters"
    );
}

/// A fixed interleaving prefix (then round-robin), so the accounting is
/// checked on a *known* schedule, not just sampled ones.
fn scripted(prefix: Vec<usize>) -> Box<dyn SchedulePolicy> {
    Box::new(Scripted::new(prefix, Box::new(RoundRobin::new())))
}

/// Mixed clean/aborting workload for the JJ lock: the aborters deposit
/// abandoned nodes, the exit walks consume them — the exact pattern the
/// amortized accounting exists to price.
fn jj_spec() -> WorkloadSpec {
    WorkloadSpec {
        plans: vec![
            ProcPlan::normal(3),
            ProcPlan::aborter(3, 25),
            ProcPlan::normal(3),
            ProcPlan::aborter(3, 10),
        ],
        cs_ops: 2,
        max_steps: 20_000_000,
        lease: sal_runtime::default_lease(),
    }
}

#[test]
fn jj_amortized_matches_cc_ground_truth_on_scripted_and_random_schedules() {
    for seed in 0..12u64 {
        let n = 4;
        let mut b = MemoryBuilder::new();
        let lock = JjLock::layout(&mut b, n);
        let cs = b.alloc(0);
        let mem = b.build_cc(n);
        let stats = PassageStats::new();
        let policy = if seed == 0 {
            scripted(vec![0, 1, 2, 3, 3, 2, 1, 0, 0, 0, 1, 1])
        } else {
            Box::new(RandomSchedule::seeded(seed))
        };
        let report = run_lock_probed(&lock, &mem, cs, &jj_spec(), policy, stats.clone())
            .expect("sim failed");
        assert!(report.mutex_check.is_ok(), "seed {seed}");
        assert!(
            stats.amortized().aborted > 0,
            "seed {seed}: no aborts — the consuming walk went unexercised"
        );
        assert_amortized_exact(&stats, &mem, &format!("jj cc seed={seed}"));
    }
}

#[test]
fn jj_amortized_matches_dsm_ground_truth() {
    // Same lock, other cost model: under DSM the charged operations
    // differ (spins on remote words keep billing), so agreement here
    // shows the aggregation layer is model-agnostic — it follows the
    // memory's definition of an RMR, whatever that is.
    for seed in 0..8u64 {
        let n = 4;
        let mut b = MemoryBuilder::new();
        let lock = JjLock::layout(&mut b, n);
        let cs = b.alloc(0);
        let mem = b.build_dsm(n);
        let stats = PassageStats::new();
        let report = run_lock_probed(
            &lock,
            &mem,
            cs,
            &jj_spec(),
            Box::new(RandomSchedule::seeded(seed)),
            stats.clone(),
        )
        .expect("sim failed");
        assert!(report.mutex_check.is_ok(), "seed {seed}");
        assert_amortized_exact(&stats, &mem, &format!("jj dsm seed={seed}"));
    }
}

#[test]
fn one_shot_amortized_matches_cc_ground_truth() {
    // The layer is lock-agnostic: the one-shot tree lock's aggregate
    // must reconcile the same way, including aborted partial passages.
    let n = 4;
    let mut b = MemoryBuilder::new();
    let lock = OneShotLock::layout(&mut b, n, 2);
    let cs = b.alloc(0);
    let mem = b.build_cc(n);
    let spec = WorkloadSpec {
        plans: vec![
            ProcPlan::normal(1),
            ProcPlan::aborter(1, 12),
            ProcPlan::aborter(1, 16),
            ProcPlan::normal(1),
        ],
        cs_ops: 2,
        max_steps: 1_000_000,
        lease: sal_runtime::default_lease(),
    };
    let stats = PassageStats::new();
    let report = run_one_shot_probed(
        &lock,
        &mem,
        cs,
        &spec,
        scripted(vec![0, 1, 2, 3, 3, 2, 1, 0]),
        stats.clone(),
    )
    .expect("sim failed");
    assert!(report.mutex_check.is_ok());
    assert_amortized_exact(&stats, &mem, "one-shot cc");
}

#[test]
fn merging_cells_equals_one_shared_sink_at_both_levels() {
    // Fan-in equivalence: K independent runs folded (a) record-level via
    // PassageStats::merge_from and (b) aggregate-level via
    // AmortizedStats::merge_from must produce the identical aggregate —
    // and it must still reconcile against the summed ground truth.
    let record_level = PassageStats::new();
    let mut aggregate_level = AmortizedStats::empty();
    let mut ground_truth = 0u64;
    for seed in [3u64, 17, 1984] {
        let n = 4;
        let mut b = MemoryBuilder::new();
        let lock = JjLock::layout(&mut b, n);
        let cs = b.alloc(0);
        let mem = b.build_cc(n);
        let cell = PassageStats::new();
        let report = run_lock_probed(
            &lock,
            &mem,
            cs,
            &jj_spec(),
            Box::new(RandomSchedule::seeded(seed)),
            cell.clone(),
        )
        .expect("sim failed");
        assert!(report.mutex_check.is_ok(), "seed {seed}");
        record_level.merge_from(&cell);
        aggregate_level.merge_from(&cell.amortized());
        ground_truth += mem.total_rmrs();
    }
    let folded = record_level.amortized();
    assert_eq!(folded, aggregate_level, "the two fan-in paths disagree");
    assert_eq!(
        folded.total_rmrs, ground_truth,
        "merged aggregate diverges from summed memory counters"
    );
    assert!(folded.max_passage_rmrs > 0);
}

#[test]
fn json_codec_round_trips_the_aggregate_bit_exactly() {
    let n = 4;
    let mut b = MemoryBuilder::new();
    let lock = JjLock::layout(&mut b, n);
    let cs = b.alloc(0);
    let mem = b.build_cc(n);
    let stats = PassageStats::new();
    run_lock_probed(
        &lock,
        &mem,
        cs,
        &jj_spec(),
        Box::new(RandomSchedule::seeded(7)),
        stats.clone(),
    )
    .expect("sim failed");
    let a = stats.amortized();
    // Render → parse → decode: what an artifact reader recovers must be
    // the identical value, amortized ratio included (f64 Display is
    // shortest-round-trip, so the quotient survives the text form).
    let text = a.to_json().render();
    let back = AmortizedStats::from_json(&Json::parse(&text).expect("parse")).expect("decode");
    assert_eq!(a, back, "codec round trip is lossy");
}

#[test]
fn empty_runs_merge_as_the_identity() {
    let mut a = AmortizedStats::empty();
    a.merge_from(&AmortizedStats::empty());
    assert_eq!(a, AmortizedStats::empty());
    assert!(a.amortized_rmrs == 0.0, "0/0 must stay 0, not NaN");

    let stats = PassageStats::new();
    let mut from_empty = AmortizedStats::empty();
    from_empty.merge_from(&stats.amortized());
    assert_eq!(from_empty, stats.amortized());
}
