//! Real-thread stress of the [`sal_sync::Arena`] public surface.
//!
//! The protocol-level interleavings are model-checked exhaustively in
//! `arena_protocol.rs`; this suite drives the actual implementation —
//! OS threads, real parking, the pooled cores — through the scenarios
//! a keyed arena exists for: promotion/demotion churn on hot keys,
//! conditional waits across the inline→materialized transition, mixed
//! deadline/abort traffic, and pool starvation. Every test ends with
//! the leak checks: all counters add up, no core stays resident.
//! The suite is lease-agnostic: CI runs it under both the default
//! scheduler config and `SAL_LEASE=1`.

use sal_sync::{AbortFlag, Arena};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Hot-key churn: all threads hammer a handful of keys, forcing
/// repeated inline→materialized→inline cycles; counts must balance
/// and the pool must drain back to empty.
#[test]
fn promotion_demotion_churn_balances() {
    let threads = 4;
    let reps = 400;
    let keys = 3u64;
    let arena: Arc<Arena<u64, u64>> = Arc::new(Arena::builder().pool(2).build());
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for t in 0..threads {
        let arena = Arc::clone(&arena);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..reps {
                let key = ((t as u64).wrapping_mul(31).wrapping_add(i)) % keys;
                *arena.lock(&key) += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = (0..keys).map(|k| *arena.lock(&k)).sum();
    assert_eq!(total, threads as u64 * reps, "lost updates under churn");
    let s = arena.stats();
    assert_eq!(s.resident_cores, 0, "cores leaked: {s:?}");
    assert_eq!(
        s.promotions, s.demotions,
        "unbalanced promote/demote: {s:?}"
    );
}

/// A herd of `lock_when` waiters across a transition: the predicate
/// only becomes true after the key has been materialized by
/// contention, and every waiter must see it.
#[test]
fn lock_when_herd_drains_completely() {
    let waiters = 6;
    let arena: Arc<Arena<&'static str, u64>> = Arc::new(Arena::new());
    let woken = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..waiters {
        let arena = Arc::clone(&arena);
        let woken = Arc::clone(&woken);
        handles.push(std::thread::spawn(move || {
            let mut g = arena.lock_when(&"gate", |v| *v >= 1);
            *g += 1; // each waiter bumps so all predicates stay true
            woken.fetch_add(1, Ordering::SeqCst);
        }));
    }
    // Let the herd register, then open the gate.
    std::thread::sleep(Duration::from_millis(30));
    *arena.lock(&"gate") = 1;
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::SeqCst), waiters);
    assert_eq!(*arena.lock(&"gate"), 1 + waiters);
    assert_eq!(arena.stats().resident_cores, 0);
}

/// Mixed deadline and abort-flag traffic against a deliberately held
/// key: expirations and aborts return errors, never corrupt the
/// count, and never strand a core.
#[test]
fn mixed_deadline_and_abort_traffic() {
    let arena: Arc<Arena<u64, u64>> = Arc::new(Arena::builder().pool(2).build());
    let stop = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(AtomicU64::new(0));
    let denied = Arc::new(AtomicU64::new(0));

    // One thread camps on the key in bursts.
    let camper = {
        let arena = Arc::clone(&arena);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let g = arena.lock(&7);
                std::thread::sleep(Duration::from_micros(300));
                drop(g);
                std::thread::yield_now();
            }
        })
    };
    let mut handles = Vec::new();
    for t in 0..3 {
        let arena = Arc::clone(&arena);
        let stop = Arc::clone(&stop);
        let entered = Arc::clone(&entered);
        let denied = Arc::clone(&denied);
        handles.push(std::thread::spawn(move || {
            let deadline_end = Instant::now() + Duration::from_millis(150);
            while Instant::now() < deadline_end && !stop.load(Ordering::SeqCst) {
                let got = match t {
                    0 => arena.try_lock_for(&7, Duration::from_micros(200)),
                    1 => arena.try_lock(&7),
                    _ => {
                        let flag = AbortFlag::new();
                        flag.set(); // pre-fired: bounded abort path
                        arena.lock_abortable(&7, &flag)
                    }
                };
                match got {
                    Some(mut g) => {
                        *g += 1;
                        entered.fetch_add(1, Ordering::SeqCst);
                    }
                    None => {
                        denied.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    camper.join().unwrap();
    assert_eq!(*arena.lock(&7), entered.load(Ordering::SeqCst));
    assert!(denied.load(Ordering::SeqCst) > 0, "camper never collided");
    assert_eq!(arena.stats().resident_cores, 0);
}

/// Pool starvation: more simultaneously-contended keys than pooled
/// cores degrades to spinning but stays correct and leak-free.
#[test]
fn starved_pool_stays_correct() {
    let threads = 6;
    let reps = 250;
    let keys = 4u64;
    let arena: Arc<Arena<u64, u64>> = Arc::new(Arena::builder().pool(1).build());
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for t in 0..threads {
        let arena = Arc::clone(&arena);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..reps {
                let key = ((i as u64) + t as u64) % keys;
                *arena.lock(&key) += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = (0..keys).map(|k| *arena.lock(&k)).sum();
    assert_eq!(total, (threads * reps) as u64);
    let s = arena.stats();
    assert_eq!(s.resident_cores, 0, "{s:?}");
    assert!(s.built_cores <= 1, "pool bound violated: {s:?}");
}

/// Distinct keys never interfere: full parallel traffic over disjoint
/// keys stays on the inline fast path (no promotions at all).
#[test]
fn disjoint_keys_stay_inline() {
    let threads = 4;
    let reps = 2_000;
    let arena: Arc<Arena<u64, u64>> = Arc::new(Arena::new());
    let mut handles = Vec::new();
    for t in 0..threads as u64 {
        let arena = Arc::clone(&arena);
        handles.push(std::thread::spawn(move || {
            for _ in 0..reps {
                *arena.lock(&t) += 1;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..threads as u64 {
        assert_eq!(*arena.lock(&t), reps);
    }
    let s = arena.stats();
    assert_eq!(
        s.promotions, 0,
        "disjoint keys should never materialize: {s:?}"
    );
    assert_eq!(s.built_cores, 0, "{s:?}");
}

/// Deadline-bounded conditional waits: expired waits report failure
/// without disturbing the value, satisfied ones complete.
#[test]
fn lock_when_deadlines_expire_cleanly() {
    let arena: Arena<u64, u64> = Arena::new();
    // Nothing ever sets key 9: the wait must time out.
    assert!(arena
        .lock_when_for(&9, |v| *v == 42, Duration::from_millis(20))
        .is_err());
    // And the failed wait must not have corrupted or leaked anything.
    assert_eq!(*arena.lock(&9), 0);
    assert_eq!(arena.stats().resident_cores, 0);

    // A satisfied wait on another key completes normally.
    *arena.lock(&10) = 42;
    let g = arena
        .lock_when_for(&10, |v| *v == 42, Duration::from_millis(500))
        .expect("predicate already true");
    assert_eq!(*g, 42);
}
