//! Exhaustive-interleaving model check of the arena's inline-word
//! protocol (`sal_core::arena_word` + `sal_sync::arena`).
//!
//! The arena's promotion/demotion protocol is a handful of SeqCst
//! operations whose correctness depends on ordering windows real
//! threads only occasionally open (promote racing an inline unlock,
//! join racing a demotion, a stale joiner incrementing a freed core's
//! counter). This test re-states each participant as an explicit
//! step-granular state machine — every atomic access from
//! `arena.rs`'s `acquire`/`promote`/`join`/`depart`/`unlock` is one
//! model step, using the *same* word-encoding and counter rules
//! exported by [`sal_core::arena_word`] — and explores **every**
//! interleaving by depth-first search over reachable states.
//!
//! Checked in every reachable state:
//!
//! * mutual exclusion — at most one participant holds a key's lock
//!   (inline or through the core), per key;
//! * the packed word always decodes (no torn/invalid encodings);
//! * a free pool slot implies nobody holds the core's lock.
//!
//! Checked in every terminal state (and no terminal state may be a
//! deadlock):
//!
//! * every passage either entered or aborted — no lost unlocks;
//! * the word is back to `UNLOCKED`, the user counter to zero, and
//!   the pooled core back in the pool — inline → materialized →
//!   inline round-trips leak nothing.

use sal_core::arena_word as word;
use std::collections::HashSet;

/// Who holds the single pooled core's internal lock.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Holder {
    None,
    /// The promoter's reserved pid, standing in for the inline holder.
    Proxy,
    Proc(usize),
}

/// Continuation after a `depart`: was this a completed passage or an
/// abandoned (aborted) attempt?
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum After {
    Passage,
    Abort,
}

/// One participant's program counter. Each variant is one atomic step
/// of the real protocol.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Pc {
    /// Top of the acquire loop: read the word and dispatch.
    Dispatch,
    /// Read `Materialized(0)`; about to increment the user counter.
    SawMat,
    /// Counted in; revalidate the word (join's second half).
    JoinReval,
    /// A counted user waiting for the core's lock.
    CoreWait,
    /// In the critical section via the inline word.
    InCsInline,
    /// In the critical section via the core.
    InCsCore,
    /// CS done; try the inline-release CAS.
    UnlockInline,
    /// Inline release lost to a promotion: exit through the proxy.
    ProxyExit,
    /// Release the core's lock.
    CoreExit,
    /// Give up the user seat (demote if last).
    Depart(After),
    DemoteSwap(After),
    DemoteClear(After),
    DemoteRelease(After),
    /// Pool slot acquired; take the proxy's user seat.
    PromoteSeat,
    /// Enter the fresh core as the proxy.
    PromoteEnter,
    /// Publish the core: CAS the word to `Materialized`.
    PromotePublish,
    /// Publish raced; unwind: exit the core,
    UndoExit,
    /// …drop the proxy seat,
    UndoSeat,
    /// …and return the slot to the pool.
    UndoRelease,
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Proc {
    pc: Pc,
    passages_left: u8,
    entered: u8,
    aborted: u8,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct St {
    /// One inline word per key (pool capacity is 1, so a materialized
    /// word always encodes core index 0).
    words: Vec<u64>,
    /// The single core's user counter (may hold `USERS_DEMOTING`).
    users: usize,
    pool_free: bool,
    holder: Holder,
    procs: Vec<Proc>,
}

/// Static per-scenario configuration (kept out of the hashed state).
struct Scenario {
    name: &'static str,
    /// `keys[i][k]` = key of proc `i`'s `k`-th passage.
    schedule: Vec<Vec<usize>>,
    /// Procs that abort instead of entering once the fast path fails.
    aborts: Vec<bool>,
    n_keys: usize,
}

impl Scenario {
    fn initial(&self) -> St {
        St {
            words: vec![word::UNLOCKED; self.n_keys],
            users: 0,
            pool_free: true,
            holder: Holder::None,
            procs: self
                .schedule
                .iter()
                .map(|s| Proc {
                    pc: Pc::Dispatch,
                    passages_left: s.len() as u8,
                    entered: 0,
                    aborted: 0,
                })
                .collect(),
        }
    }

    /// The key proc `i` is currently working on.
    fn key(&self, st: &St, i: usize) -> usize {
        let done = self.schedule[i].len() - st.procs[i].passages_left as usize;
        self.schedule[i][done.min(self.schedule[i].len() - 1)]
    }
}

fn finish(p: &mut Proc, after: After) {
    match after {
        After::Passage => {}
        After::Abort => p.aborted += 1,
    }
    p.passages_left -= 1;
    p.pc = if p.passages_left == 0 {
        Pc::Done
    } else {
        Pc::Dispatch
    };
}

/// All states reachable from `st` by letting proc `i` take one step.
fn step(sc: &Scenario, st: &St, i: usize) -> Vec<St> {
    let key = sc.key(st, i);
    let mut out = Vec::new();
    let mut next = |f: &dyn Fn(&mut St)| {
        let mut s = st.clone();
        f(&mut s);
        out.push(s);
    };
    match st.procs[i].pc {
        Pc::Done => {}
        Pc::Dispatch => match word::decode(st.words[key]) {
            word::WordState::Unlocked => next(&|s: &mut St| {
                s.words[key] = word::LOCKED_INLINE;
                s.procs[i].pc = Pc::InCsInline;
                s.procs[i].entered += 1;
            }),
            word::WordState::LockedInline => {
                if sc.aborts[i] {
                    // try_lock fast-fail: a set signal aborts before
                    // any materialization.
                    next(&|s: &mut St| finish(&mut s.procs[i], After::Abort));
                }
                if st.pool_free {
                    next(&|s: &mut St| {
                        s.pool_free = false;
                        s.procs[i].pc = Pc::PromoteSeat;
                    });
                }
                // Pool exhausted and not aborting: degraded spin —
                // no enabled step until the word or pool changes.
            }
            word::WordState::Materialized(idx) => {
                assert_eq!(idx, 0, "pool capacity is 1");
                next(&|s: &mut St| s.procs[i].pc = Pc::SawMat);
            }
        },
        Pc::SawMat => {
            let users = st.users;
            next(&|s: &mut St| match word::join_users(users) {
                Some(u) => {
                    s.users = u;
                    s.procs[i].pc = Pc::JoinReval;
                }
                None => s.procs[i].pc = Pc::Dispatch,
            });
        }
        Pc::JoinReval => {
            if st.words[key] == word::materialized(0) {
                next(&|s: &mut St| {
                    s.procs[i].pc = if sc.aborts[i] {
                        // Abort while queued: the bounded abort gives
                        // the seat straight back.
                        Pc::Depart(After::Abort)
                    } else {
                        Pc::CoreWait
                    };
                });
            } else {
                // The core moved on between read and increment: undo
                // the seat (plain decrement, not a depart).
                next(&|s: &mut St| {
                    s.users -= 1;
                    s.procs[i].pc = Pc::Dispatch;
                });
            }
        }
        Pc::CoreWait => {
            if st.holder == Holder::None {
                next(&|s: &mut St| {
                    s.holder = Holder::Proc(i);
                    s.procs[i].pc = Pc::InCsCore;
                    s.procs[i].entered += 1;
                });
            }
        }
        Pc::InCsInline => next(&|s: &mut St| s.procs[i].pc = Pc::UnlockInline),
        Pc::InCsCore => next(&|s: &mut St| s.procs[i].pc = Pc::CoreExit),
        Pc::UnlockInline => {
            if st.words[key] == word::LOCKED_INLINE {
                next(&|s: &mut St| {
                    s.words[key] = word::UNLOCKED;
                    finish(&mut s.procs[i], After::Passage);
                });
            } else {
                assert_eq!(
                    st.words[key],
                    word::materialized(0),
                    "an inline hold can only change by promotion"
                );
                next(&|s: &mut St| s.procs[i].pc = Pc::ProxyExit);
            }
        }
        Pc::ProxyExit => {
            assert_eq!(st.holder, Holder::Proxy, "proxy models our hold");
            next(&|s: &mut St| {
                s.holder = Holder::None;
                s.procs[i].pc = Pc::Depart(After::Passage);
            });
        }
        Pc::CoreExit => {
            assert_eq!(st.holder, Holder::Proc(i));
            next(&|s: &mut St| {
                s.holder = Holder::None;
                s.procs[i].pc = Pc::Depart(After::Passage);
            });
        }
        Pc::Depart(after) => {
            assert!(
                st.users != 0 && st.users != word::USERS_DEMOTING,
                "departing a dead core"
            );
            if word::may_demote(st.users) {
                next(&|s: &mut St| {
                    s.users = word::USERS_DEMOTING;
                    s.procs[i].pc = Pc::DemoteSwap(after);
                });
            } else {
                next(&|s: &mut St| {
                    s.users -= 1;
                    finish(&mut s.procs[i], after);
                });
            }
        }
        Pc::DemoteSwap(after) => {
            assert_eq!(st.words[key], word::materialized(0), "demoting a live key");
            next(&|s: &mut St| {
                s.words[key] = word::UNLOCKED;
                s.procs[i].pc = Pc::DemoteClear(after);
            });
        }
        Pc::DemoteClear(after) => next(&|s: &mut St| {
            s.users = 0;
            s.procs[i].pc = Pc::DemoteRelease(after);
        }),
        Pc::DemoteRelease(after) => next(&|s: &mut St| {
            s.pool_free = true;
            finish(&mut s.procs[i], after);
        }),
        Pc::PromoteSeat => {
            assert_ne!(st.users, word::USERS_DEMOTING, "pool slot was free");
            next(&|s: &mut St| {
                s.users += 1;
                s.procs[i].pc = Pc::PromoteEnter;
            });
        }
        Pc::PromoteEnter => {
            assert_eq!(st.holder, Holder::None, "fresh core acquires immediately");
            next(&|s: &mut St| {
                s.holder = Holder::Proxy;
                s.procs[i].pc = Pc::PromotePublish;
            });
        }
        Pc::PromotePublish => {
            if st.words[key] == word::LOCKED_INLINE {
                next(&|s: &mut St| {
                    s.words[key] = word::materialized(0);
                    s.procs[i].pc = Pc::Dispatch;
                });
            } else {
                next(&|s: &mut St| s.procs[i].pc = Pc::UndoExit);
            }
        }
        Pc::UndoExit => {
            assert_eq!(st.holder, Holder::Proxy);
            next(&|s: &mut St| {
                s.holder = Holder::None;
                s.procs[i].pc = Pc::UndoSeat;
            });
        }
        Pc::UndoSeat => {
            assert!(st.users >= 1 && st.users != word::USERS_DEMOTING);
            next(&|s: &mut St| {
                s.users -= 1;
                s.procs[i].pc = Pc::UndoRelease;
            });
        }
        Pc::UndoRelease => next(&|s: &mut St| {
            s.pool_free = true;
            s.procs[i].pc = Pc::Dispatch;
        }),
    }
    out
}

/// Does proc `i` currently hold key `k`'s lock (in either mode)?
fn holds(sc: &Scenario, st: &St, i: usize, k: usize) -> bool {
    sc.key(st, i) == k
        && matches!(
            st.procs[i].pc,
            Pc::InCsInline | Pc::UnlockInline | Pc::ProxyExit | Pc::InCsCore | Pc::CoreExit
        )
}

fn check_invariants(sc: &Scenario, st: &St) {
    for k in 0..sc.n_keys {
        // Decode panics on an invalid encoding — reaching it is the check.
        let _ = word::decode(st.words[k]);
        let holders = (0..st.procs.len()).filter(|&i| holds(sc, st, i, k)).count();
        assert!(
            holders <= 1,
            "mutual exclusion violated on key {k}: {st:?} in {}",
            sc.name
        );
    }
    if st.pool_free {
        assert_eq!(
            st.holder,
            Holder::None,
            "a free pool slot cannot have a held core: {st:?} in {}",
            sc.name
        );
    }
}

fn check_final(sc: &Scenario, st: &St) {
    for (i, p) in st.procs.iter().enumerate() {
        assert_eq!(
            p.pc,
            Pc::Done,
            "deadlock: proc {i} stuck with no enabled step: {st:?} in {}",
            sc.name
        );
        assert_eq!(
            (p.entered + p.aborted) as usize,
            sc.schedule[i].len(),
            "proc {i} lost a passage: {st:?} in {}",
            sc.name
        );
    }
    for k in 0..sc.n_keys {
        assert_eq!(st.words[k], word::UNLOCKED, "key {k} not demoted: {st:?}");
    }
    assert_eq!(st.users, 0, "user counter leaked: {st:?} in {}", sc.name);
    assert!(st.pool_free, "pooled core leaked: {st:?} in {}", sc.name);
    assert_eq!(st.holder, Holder::None);
}

/// DFS over every reachable interleaving; returns (states, terminals).
fn explore(sc: &Scenario) -> (usize, usize) {
    let mut seen: HashSet<St> = HashSet::new();
    let mut stack = vec![sc.initial()];
    let mut terminals = 0usize;
    while let Some(st) = stack.pop() {
        if !seen.insert(st.clone()) {
            continue;
        }
        check_invariants(sc, &st);
        let mut any = false;
        for i in 0..st.procs.len() {
            for succ in step(sc, &st, i) {
                any = true;
                if !seen.contains(&succ) {
                    stack.push(succ);
                }
            }
        }
        if !any {
            check_final(sc, &st);
            terminals += 1;
        }
    }
    assert!(terminals > 0, "no terminal state reached in {}", sc.name);
    (seen.len(), terminals)
}

#[test]
fn two_procs_two_passages_one_key() {
    let sc = Scenario {
        name: "2x2x1",
        schedule: vec![vec![0, 0], vec![0, 0]],
        aborts: vec![false, false],
        n_keys: 1,
    };
    let (states, _) = explore(&sc);
    assert!(states > 100, "exploration too shallow: {states} states");
}

#[test]
fn three_procs_one_passage_one_key() {
    let sc = Scenario {
        name: "3x1x1",
        schedule: vec![vec![0], vec![0], vec![0]],
        aborts: vec![false, false, false],
        n_keys: 1,
    };
    explore(&sc);
}

#[test]
fn two_keys_share_the_single_pooled_core() {
    // Each proc visits both keys in opposite order: the one core must
    // be demoted off one key before it can serve the other, and a
    // stale joiner must never latch onto a core republished for the
    // other key.
    let sc = Scenario {
        name: "cross-key",
        schedule: vec![vec![0, 1], vec![1, 0]],
        aborts: vec![false, false],
        n_keys: 2,
    };
    explore(&sc);
}

#[test]
fn an_aborter_in_the_queue_leaks_nothing() {
    let sc = Scenario {
        name: "aborter",
        schedule: vec![vec![0, 0], vec![0]],
        aborts: vec![false, true],
        n_keys: 1,
    };
    explore(&sc);
}

#[test]
fn three_procs_with_one_aborter_two_passages() {
    let sc = Scenario {
        name: "3-mixed",
        schedule: vec![vec![0, 0], vec![0], vec![0]],
        aborts: vec![false, true, false],
        n_keys: 1,
    };
    explore(&sc);
}
