//! Cancellation-at-every-point harness (satellite of the async PR).
//!
//! A future can be dropped after *any* number of polls. This suite
//! drops a pending `lock()` future after exactly `k` polls for every
//! `k` up to a ceiling and asserts, per `k`:
//!
//! * **no leaked queue node / pid** — the pool is back to full and a
//!   fresh waiter still acquires;
//! * **no lost wakeup** — a second waiter parked across the
//!   cancellation is woken by the eventual release (its waker fires)
//!   and then polls `Ready`;
//! * **bounded abort** — the cancelled passage's probe-counted
//!   shared-memory ops stay ≤ 300, the same bound the sync deadline
//!   tests enforce.
//!
//! `k = 0` is the degenerate point: the future never polled, so it
//! never checked out a pid and produces no passage record — drop must
//! simply be a no-op.

use sal_obs::PassageStats;
use sal_sync::AsyncAbortableMutex;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

/// A waker that counts its wakes in a leaked `AtomicUsize`.
fn counting_waker() -> (Waker, &'static AtomicUsize) {
    fn vt() -> &'static RawWakerVTable {
        &RawWakerVTable::new(
            |d| RawWaker::new(d, vt()),
            |d| {
                // Safety: `d` is the leaked `&'static AtomicUsize`
                // below; it is never deallocated.
                unsafe { &*d.cast::<AtomicUsize>() }.fetch_add(1, Ordering::SeqCst);
            },
            |d| {
                // Safety: as above.
                unsafe { &*d.cast::<AtomicUsize>() }.fetch_add(1, Ordering::SeqCst);
            },
            |_| {},
        )
    }
    let count: &'static AtomicUsize = Box::leak(Box::new(AtomicUsize::new(0)));
    let raw = RawWaker::new((count as *const AtomicUsize).cast(), vt());
    // Safety: the vtable functions only touch the leaked static.
    (unsafe { Waker::from_raw(raw) }, count)
}

fn poll_with<F: Future + Unpin>(fut: &mut F, waker: &Waker) -> Poll<F::Output> {
    Pin::new(fut).poll(&mut Context::from_waker(waker))
}

fn noop_waker() -> Waker {
    counting_waker().0
}

#[test]
fn cancellation_at_every_poll_count() {
    const K_MAX: usize = 12;
    let stats = PassageStats::new();
    let m = AsyncAbortableMutex::builder(0u64)
        .capacity(4)
        .probe(stats.clone())
        .build_async();

    for k in 0..=K_MAX {
        let g = m.try_lock().expect("lock free at the top of each round");

        // The victim: polled exactly k times against the held lock,
        // then dropped.
        let mut victim = m.lock();
        let noop = noop_waker();
        for i in 0..k {
            assert!(
                poll_with(&mut victim, &noop).is_pending(),
                "k={k}: poll {i} must stay pending while the lock is held"
            );
        }
        drop(victim);
        assert_eq!(
            m.free_pids(),
            3,
            "k={k}: cancelled victim leaked its pid (holder owns the 4th)"
        );
        assert_eq!(
            m.queued_tasks(),
            0,
            "k={k}: victim left an admission ticket"
        );

        // No lost wakeup: a second waiter parked *after* the
        // cancellation must be woken by the release and then acquire.
        let (waker, wakes) = counting_waker();
        let mut fresh = m.lock();
        assert!(poll_with(&mut fresh, &waker).is_pending());
        drop(g);
        assert!(
            wakes.load(Ordering::SeqCst) >= 1,
            "k={k}: release did not wake the parked waiter — lost wakeup"
        );
        let g2 = match poll_with(&mut fresh, &waker) {
            Poll::Ready(g2) => g2,
            Poll::Pending => panic!("k={k}: woken waiter failed to acquire the free lock"),
        };
        drop(fresh);
        drop(g2);
        assert_eq!(m.free_pids(), 4, "k={k}: pool not restored at round end");
    }

    // Bounded abort, per k: every cancelled passage (k ≥ 1 checked out
    // a pid and began a passage; k = 0 never did) aborted in ≤ 300
    // probe-counted shared-memory ops.
    let records = stats.records();
    let aborted: Vec<_> = records.iter().filter(|r| !r.entered).collect();
    assert_eq!(
        aborted.len(),
        K_MAX,
        "one aborted passage for each k in 1..=K_MAX, none for k = 0"
    );
    for (i, r) in aborted.iter().enumerate() {
        assert!(
            r.ops <= 300,
            "k={}: cancelled passage took {} ops — not a bounded abort",
            i + 1,
            r.ops
        );
    }
    assert_eq!(m.stats().cancelled_pending, K_MAX as u64);
}

#[test]
fn cancelling_a_middle_waiter_preserves_the_queue() {
    // Three waiters queue behind a holder; the middle one is dropped.
    // The survivors must still acquire, in order, off the release chain.
    let m = AsyncAbortableMutex::builder(0u64).capacity(8).build_async();
    let g = m.try_lock().expect("free");

    let (wa, ka) = counting_waker();
    let (wb, _) = counting_waker();
    let (wc, kc) = counting_waker();
    let mut a = m.lock();
    let mut b = m.lock();
    let mut c = m.lock();
    assert!(poll_with(&mut a, &wa).is_pending());
    assert!(poll_with(&mut b, &wb).is_pending());
    assert!(poll_with(&mut c, &wc).is_pending());

    drop(b); // cancel the middle of the queue
    assert_eq!(m.stats().cancelled_pending, 1);

    drop(g);
    assert!(
        ka.load(Ordering::SeqCst) >= 1,
        "head waiter not woken by release"
    );
    let mut ga = match poll_with(&mut a, &wa) {
        Poll::Ready(ga) => ga,
        Poll::Pending => panic!("head waiter pending after release"),
    };
    *ga += 1;
    assert!(
        poll_with(&mut c, &wc).is_pending(),
        "tail must wait for the head"
    );
    drop(ga);
    assert!(kc.load(Ordering::SeqCst) >= 1, "tail waiter not woken");
    let mut gc = match poll_with(&mut c, &wc) {
        Poll::Ready(gc) => gc,
        Poll::Pending => panic!("tail waiter pending after handoff"),
    };
    *gc += 1;
    drop(gc);

    drop(a);
    drop(c);
    assert_eq!(m.free_pids(), 8, "a pid leaked through the cancellation");
    let m_inner = m.into_inner();
    assert_eq!(m_inner, 2, "both survivors entered exactly once");
}

#[test]
fn cancelling_conditional_waiters_deregisters() {
    // lock_when parks in the CCS registry between acquisitions; a drop
    // at any poll depth must deregister and release the pid.
    let m = AsyncAbortableMutex::builder(0u64).capacity(4).build_async();
    let noop = noop_waker();
    for k in 0..=6usize {
        let mut fut = m.lock_when(|v: &u64| *v == u64::MAX);
        for i in 0..k {
            assert!(
                poll_with(&mut fut, &noop).is_pending(),
                "k={k}: poll {i} of an unsatisfiable condition must pend"
            );
        }
        drop(fut);
        assert_eq!(m.waiters(), 0, "k={k}: CCS registration leaked");
        assert_eq!(m.free_pids(), 4, "k={k}: conditional waiter leaked its pid");
    }
    // The lock is still fully functional.
    let mut g = m.try_lock().expect("usable after cancellation rounds");
    *g = u64::MAX;
    drop(g);
    let g = m.try_lock().expect("reusable");
    assert_eq!(*g, u64::MAX);
}
