//! Async surface tests: `AsyncAbortableMutex` driven by the
//! `sal-runtime` mini-executor (many tasks over few worker threads) and
//! by hand-rolled polls where determinism matters.
//!
//! The marquee properties, in paper terms:
//!
//! * **Counter integrity** — thousands of tasks time-slicing over a few
//!   workers still see mutual exclusion (no lost updates).
//! * **Cancellation = bounded abort** — dropping a pending `lock()`
//!   future against a held lock costs a bounded number of the dropping
//!   task's own shared-memory steps, measured by probe op counters at
//!   N ∈ {4, 8, 16} exactly like the sync deadline tests.
//! * **Cancellation storms leak nothing** — after 10 000 futures are
//!   dropped mid-flight, every pid is back in the pool, no conditional
//!   registration lingers, and the lock still works.

use sal_obs::PassageStats;
use sal_runtime::executor::{block_on, sleep, Executor};
use sal_sync::{AbortReason, AsyncAbortableMutex};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::Duration;

/// A no-op waker for hand-driven polls.
fn noop_waker() -> Waker {
    fn vt() -> &'static RawWakerVTable {
        &RawWakerVTable::new(|d| RawWaker::new(d, vt()), |_| {}, |_| {}, |_| {})
    }
    // SAFETY: every vtable entry ignores its data pointer.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), vt())) }
}

fn poll_once<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
    Pin::new(fut).poll(&mut Context::from_waker(&noop_waker()))
}

#[test]
fn counter_integrity_many_tasks_few_workers() {
    // 2000 tasks × 5 increments on 4 workers over an 8-pid mutex:
    // tasks ≫ pids ≫ workers, the shape the async surface exists for.
    let m = Arc::new(AsyncAbortableMutex::builder(0u64).capacity(8).build_async());
    let ex = Executor::new();
    for _ in 0..2000 {
        let m = Arc::clone(&m);
        ex.spawn(async move {
            for _ in 0..5 {
                *m.lock().await += 1;
            }
        });
    }
    ex.run(4);
    assert_eq!(m.free_pids(), 8, "every pid returned to the pool");
    assert_eq!(m.queued_tasks(), 0);
    let m = Arc::try_unwrap(m).expect("executor drained");
    assert_eq!(m.into_inner(), 10_000);
}

#[test]
fn async_lock_when_pipeline() {
    // Producer/consumer through the conditional critical section: the
    // consumer's predicate admits it exactly when an item is present.
    let m = Arc::new(
        AsyncAbortableMutex::builder(Vec::<u32>::new())
            .capacity(4)
            .build_async(),
    );
    let ex = Executor::new();
    const ITEMS: u32 = 200;
    let consumed = Arc::new(AtomicU64::new(0));
    {
        let m = Arc::clone(&m);
        ex.spawn(async move {
            for i in 0..ITEMS {
                m.lock().await.push(i);
            }
        });
    }
    for _ in 0..4 {
        let m = Arc::clone(&m);
        let consumed = Arc::clone(&consumed);
        ex.spawn(async move {
            loop {
                let mut g = m.lock_when(|q: &Vec<u32>| !q.is_empty()).await;
                g.pop().expect("predicate held under the lock");
                if consumed.fetch_add(1, Ordering::SeqCst) + 1 == u64::from(ITEMS) {
                    return;
                }
                // Other consumers may be parked on a now-empty queue;
                // they exit via the count check after our next wake.
                if consumed.load(Ordering::SeqCst) >= u64::from(ITEMS) {
                    return;
                }
            }
        });
    }
    // Consumers that lose the final race park forever; a watchdog
    // unblocks them by appending sentinels once the real items are done.
    {
        let m = Arc::clone(&m);
        let consumed = Arc::clone(&consumed);
        ex.spawn(async move {
            while consumed.load(Ordering::SeqCst) < u64::from(ITEMS) {
                sleep(Duration::from_millis(1)).await;
            }
            for _ in 0..4 {
                m.lock().await.push(u32::MAX);
            }
        });
    }
    ex.run(3);
    assert!(consumed.load(Ordering::SeqCst) >= u64::from(ITEMS));
    assert_eq!(m.waiters(), 0, "no conditional registration leaked");
    assert_eq!(m.free_pids(), 4);
}

#[test]
fn dropping_pending_futures_is_a_bounded_abort() {
    // The paper's headline, measured on the async path: with the lock
    // demonstrably held, every dropped pending future must resolve in a
    // bounded number of its own shared-memory steps. Mirrors
    // `deadline_locking::aborts_against_a_held_lock_take_bounded_steps`
    // but the abort trigger is future cancellation, not a signal.
    for capacity in [4usize, 8, 16] {
        let stats = PassageStats::new();
        let m = AsyncAbortableMutex::builder(())
            .capacity(capacity)
            .branching(8)
            .probe(stats.clone())
            .build_async();
        let g = m.try_lock().expect("uncontended");
        let attempts = 25usize;
        for _ in 0..attempts {
            // Fill the remaining pids with pending futures, then drop
            // them all — each drop runs the abort path.
            let mut futs: Vec<_> = (1..capacity).map(|_| m.lock()).collect();
            for f in &mut futs {
                assert!(poll_once(f).is_pending(), "the lock is held");
            }
            drop(futs);
            assert_eq!(m.free_pids(), capacity - 1, "aborts released their pids");
        }
        drop(g);

        let records = stats.records();
        let aborted: Vec<_> = records.iter().filter(|r| !r.entered).collect();
        assert_eq!(aborted.len(), (capacity - 1) * attempts);
        let max_ops = aborted.iter().map(|r| r.ops).max().unwrap();
        assert!(
            max_ops <= 300,
            "{capacity} pids: a cancelled passage took {max_ops} shared-memory ops \
             — drop is not a bounded abort"
        );
        assert_eq!(
            m.stats().cancelled_pending,
            ((capacity - 1) * attempts) as u64
        );
    }
}

#[test]
fn cancellation_storm_leaks_nothing() {
    // 10 000 tasks race a tiny deadline against real contention; most
    // resolve by abort (poll-time deadline or drop-path cancellation).
    // Afterwards: all pids free, zero registrations, lock functional.
    let m = Arc::new(AsyncAbortableMutex::builder(0u64).capacity(8).build_async());
    let ex = Executor::new();
    let entered = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    for i in 0..10_000u64 {
        let m = Arc::clone(&m);
        let entered = Arc::clone(&entered);
        let aborted = Arc::clone(&aborted);
        ex.spawn(async move {
            match m.lock_timeout(Duration::from_micros(i % 50)).await {
                Ok(mut g) => {
                    *g += 1;
                    entered.fetch_add(1, Ordering::Relaxed);
                }
                Err(AbortReason::Deadline) => {
                    aborted.fetch_add(1, Ordering::Relaxed);
                }
                Err(r) => panic!("unexpected abort reason {r:?}"),
            }
        });
    }
    ex.run(4);
    assert_eq!(
        entered.load(Ordering::Relaxed) + aborted.load(Ordering::Relaxed),
        10_000
    );
    assert_eq!(m.free_pids(), 8, "storm leaked a pid");
    assert_eq!(m.queued_tasks(), 0, "storm leaked an admission ticket");
    assert_eq!(m.waiters(), 0);
    block_on(async {
        *m.lock().await += 1;
    });
    let m = Arc::try_unwrap(m).expect("executor drained");
    let total = entered.load(Ordering::Relaxed) + 1;
    assert_eq!(
        m.into_inner(),
        total,
        "every entered passage incremented once"
    );
}

#[test]
fn deadline_errs_and_post_handoff_deadline_still_enters() {
    let m = AsyncAbortableMutex::builder(7u64).capacity(2).build_async();

    // Free lock + already-expired deadline: Enter semantics — the
    // acquisition sees no wait, so it succeeds (same as the sync API).
    let g = block_on(m.lock_timeout(Duration::ZERO)).expect("free lock enters despite deadline");
    assert_eq!(*g, 7);
    drop(g);

    // Held lock: the deadline future errs once expired, at poll time.
    let g = m.try_lock().expect("uncontended");
    let mut fut = m.lock_timeout(Duration::from_millis(2));
    assert!(poll_once(&mut fut).is_pending());
    std::thread::sleep(Duration::from_millis(5));
    match poll_once(&mut fut) {
        Poll::Ready(Err(AbortReason::Deadline)) => {}
        other => panic!("expected Err(Deadline), got {other:?}"),
    }
    drop(fut);
    drop(g);
    assert_eq!(m.free_pids(), 2);
}

#[test]
fn evaluate_policy_wakes_fewer_tasks_than_broadcast() {
    // The CCS economics carry over to the async path: N waiters on
    // staggered thresholds, each transition newly satisfies about one
    // of them. Evaluate wakes only the satisfied; Broadcast wakes all.
    // (Thresholds are monotone — `>=`, not `==` — so a waiter that
    // registers late still resolves instead of waiting forever.)
    use sal_sync::WakePolicy;
    let run = |policy: WakePolicy| -> (u64, u64) {
        let m = Arc::new(
            AsyncAbortableMutex::builder(0u64)
                .capacity(8)
                .wake_policy(policy)
                .build_async(),
        );
        let ex = Executor::new();
        for t in 1..=6u64 {
            let m = Arc::clone(&m);
            ex.spawn(async move {
                let g = m.lock_when(move |v: &u64| *v >= t).await;
                assert!(*g >= t);
            });
        }
        {
            let m = Arc::clone(&m);
            ex.spawn(async move {
                for _ in 0..6 {
                    // Park-wait so all pending waiters register first.
                    sleep(Duration::from_millis(2)).await;
                    *m.lock().await += 1;
                }
            });
        }
        ex.run(3);
        let s = m.ccs_stats();
        (s.wakeups, s.transitions)
    };
    let (eval_wakeups, eval_transitions) = run(WakePolicy::Evaluate);
    let (bcast_wakeups, bcast_transitions) = run(WakePolicy::Broadcast);
    assert!(eval_transitions > 0 && bcast_transitions > 0);
    // Evaluate wakes only satisfiable waiters: at most ~1 per
    // transition. Broadcast wakes every registered waiter.
    assert!(
        eval_wakeups <= eval_transitions + 2,
        "evaluate woke {eval_wakeups} over {eval_transitions} transitions"
    );
    assert!(
        bcast_wakeups > eval_wakeups,
        "broadcast ({bcast_wakeups}) should out-wake evaluate ({eval_wakeups})"
    );
}

#[test]
fn guard_can_be_dropped_on_another_worker() {
    // AsyncMutexGuard is Send: an executor may resume (and finish) the
    // holding task on a different worker thread than the one that
    // acquired. Force migrations with a yield point while holding.
    struct YieldOnce(bool);
    impl Future for YieldOnce {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    let m = Arc::new(AsyncAbortableMutex::builder(0u64).capacity(4).build_async());
    let ex = Executor::new();
    let migrations = Arc::new(AtomicUsize::new(0));
    for _ in 0..400 {
        let m = Arc::clone(&m);
        let migrations = Arc::clone(&migrations);
        ex.spawn(async move {
            let before = std::thread::current().id();
            let mut g = m.lock().await;
            *g += 1;
            YieldOnce(false).await; // guard held across a suspension
            *g += 1;
            if std::thread::current().id() != before {
                migrations.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    ex.run(4);
    let m = Arc::try_unwrap(m).expect("executor drained");
    assert_eq!(m.into_inner(), 800);
    // Migration count is scheduling-dependent; the integrity assert
    // above is the real check. Report for the curious.
    println!(
        "guard-holding tasks migrated workers {} times",
        migrations.load(Ordering::Relaxed)
    );
}
