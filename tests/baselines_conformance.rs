//! Every lock in the workspace, same workload grid, same verdicts:
//! mutual exclusion always; all attempts resolve; non-aborting processes
//! always complete. This is the conformance gate that lets the Table-1
//! benchmarks compare the locks meaningfully.

use sal_bench::{build_lock, LockKind};
use sal_memory::Mem;
use sal_runtime::{run_lock, ProcPlan, RandomSchedule, WorkloadSpec};

/// Registry-driven: every `LockKind::NAMES` entry at branching 4 (so a
/// newly registered kind is conformance-gated without touching this
/// file), plus extra branching variants of the tree locks.
fn all_kinds() -> Vec<LockKind> {
    let mut kinds = LockKind::all(4);
    kinds.extend([
        LockKind::OneShot { b: 2 },
        LockKind::OneShot { b: 16 },
        LockKind::OneShotPlain { b: 2 },
    ]);
    kinds
}

fn conformance(kind: LockKind, n: usize, aborters: usize, seed: u64) {
    let passages = if kind.one_shot() { 1 } else { 2 };
    let mut plans = Vec::new();
    for p in 0..n {
        if kind.abortable() && p >= n - aborters {
            plans.push(ProcPlan::aborter(passages, 20 + seed % 30));
        } else {
            plans.push(ProcPlan::normal(passages));
        }
    }
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(kind, n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 20_000_000,
        lease: sal_runtime::default_lease(),
    };
    let report = run_lock(
        &*built.lock,
        &built.mem,
        built.cs_word,
        &spec,
        Box::new(RandomSchedule::seeded(seed)),
    )
    .unwrap_or_else(|e| panic!("{kind:?} n={n} seed={seed}: {e}"));
    assert!(
        report.mutex_check.is_ok(),
        "{kind:?} n={n} seed={seed}: {:?}",
        report.mutex_check
    );
    let resolved: usize = report.outcomes.iter().map(|o| o.0 + o.1).sum();
    assert_eq!(resolved, attempts, "{kind:?} n={n} seed={seed}");
    for (pid, plan) in spec.plans.iter().enumerate() {
        if matches!(plan.role, sal_runtime::Role::Normal) {
            assert_eq!(
                report.outcomes[pid].0, plan.passages,
                "{kind:?} n={n} seed={seed}: normal process {pid} did not complete"
            );
        }
    }
    let entered = report.total_entered();
    assert_eq!(
        built.mem.read(0, built.cs_word),
        (entered * spec.cs_ops) as u64,
        "{kind:?} n={n} seed={seed}: CS integrity"
    );
}

#[test]
fn clean_workloads_all_locks() {
    for kind in all_kinds() {
        for seed in 0..8 {
            conformance(kind, 5, 0, seed);
        }
    }
}

#[test]
fn aborting_workloads_all_abortable_locks() {
    for kind in all_kinds() {
        if !kind.abortable() {
            continue;
        }
        for seed in 0..8 {
            conformance(kind, 6, 2, seed);
        }
    }
}

#[test]
fn heavier_contention_spot_checks() {
    for kind in [
        LockKind::OneShot { b: 4 },
        LockKind::LongLived { b: 4 },
        LockKind::Tournament,
        LockKind::Scott,
        LockKind::Lee,
        LockKind::JjAmortized,
    ] {
        conformance(kind, 12, 5, 99);
    }
}

/// The non-abortable classics ignore the signal rather than failing.
#[test]
fn non_abortable_locks_ignore_signals() {
    use sal_memory::{AbortFlag, AbortSignal};
    use sal_obs::NoProbe;
    for kind in [LockKind::Mcs, LockKind::Ticket] {
        let built = build_lock(kind, 2, 4);
        let sig = AbortFlag::new();
        sig.set();
        assert!(sig.is_set());
        assert!(
            built.lock.enter(&built.mem, 0, &sig, &NoProbe).entered(),
            "{kind:?}"
        );
        built.lock.exit(&built.mem, 0, &NoProbe);
        assert!(!built.lock.is_abortable());
    }
}

/// Every abortable lock returns false promptly on a pre-fired signal
/// when the lock is held (bounded abort at the API level).
#[test]
fn pre_fired_signal_aborts_promptly_when_held() {
    use sal_memory::{AbortFlag, NeverAbort};
    use sal_obs::NoProbe;
    for kind in all_kinds() {
        if !kind.abortable() || kind.one_shot() {
            // (one-shot kinds covered in their own crates' tests; here
            // the holder would consume the single passage.)
        }
        if !kind.abortable() {
            continue;
        }
        let built = build_lock(kind, 3, 8);
        assert!(built
            .lock
            .enter(&built.mem, 0, &NeverAbort, &NoProbe)
            .entered());
        let sig = AbortFlag::new();
        sig.set();
        let before = built.mem.ops(1);
        let outcome = built.lock.enter(&built.mem, 1, &sig, &NoProbe);
        assert!(
            outcome.aborted(),
            "{kind:?}: should abort while lock is held"
        );
        assert!(
            built.mem.ops(1) - before < 500,
            "{kind:?}: abort was not bounded"
        );
        built.lock.exit(&built.mem, 0, &NoProbe);
        // Lock remains usable by a third process.
        assert!(
            built
                .lock
                .enter(&built.mem, 2, &NeverAbort, &NoProbe)
                .entered(),
            "{kind:?}"
        );
        built.lock.exit(&built.mem, 2, &NoProbe);
    }
}
