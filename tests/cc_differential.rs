//! Differential test of the sharded lock-free `CcMemory` against the
//! retained global-mutex reference `MutexCcMemory`.
//!
//! The sharded engine's whole claim is *bit-identical accounting*: on
//! any serialized operation sequence it must return the same values and
//! charge the same per-process RMR/op counts as the obviously-correct
//! single-lock implementation it replaced. This suite replays seeded
//! random sequences of all five `OpKind`s (including `Swap`, a
//! write-type invalidator) against both implementations side by side,
//! asserting equality after *every* operation — in dense and sparse
//! epoch-table mode — plus a handful of adversarial scripted schedules
//! around the write-run edge cases.

use sal_memory::{EpochMode, Mem, MemoryBuilder, WordId};
use sal_runtime::SmallRng;

/// Apply one random operation to both memories, asserting identical
/// observable results.
fn step(rng: &mut SmallRng, sharded: &dyn Mem, oracle: &dyn Mem, nprocs: usize, nwords: usize) {
    let p = rng.random_range(0..nprocs);
    let w = WordId::from_index(rng.random_range(0..nwords));
    match rng.random_range(0..5) {
        0 => assert_eq!(sharded.read(p, w), oracle.read(p, w), "read value diverged"),
        1 => {
            let v = rng.next_u64() % 16;
            sharded.write(p, w, v);
            oracle.write(p, w, v);
        }
        2 => {
            // Draw `old` from a small domain so CASes succeed and fail in
            // a healthy mix (both paths are write-type; both must charge).
            let old = rng.next_u64() % 16;
            let new = rng.next_u64() % 16;
            assert_eq!(
                sharded.cas(p, w, old, new),
                oracle.cas(p, w, old, new),
                "cas outcome diverged"
            );
        }
        3 => {
            let add = rng.next_u64(); // wrapping: exercise overflow too
            assert_eq!(
                sharded.faa(p, w, add),
                oracle.faa(p, w, add),
                "faa previous value diverged"
            );
        }
        _ => {
            let v = rng.next_u64() % 16;
            assert_eq!(
                sharded.swap(p, w, v),
                oracle.swap(p, w, v),
                "swap previous value diverged"
            );
        }
    }
    assert_eq!(
        sharded.rmrs(p),
        oracle.rmrs(p),
        "rmrs(p) diverged after op by {p}"
    );
    assert_eq!(
        sharded.ops(p),
        oracle.ops(p),
        "ops(p) diverged after op by {p}"
    );
}

fn run_seed(seed: u64, nprocs: usize, nwords: usize, ops: usize, mode: EpochMode) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut inits = Vec::with_capacity(nwords);
    let mut b_sharded = MemoryBuilder::new();
    let mut b_oracle = MemoryBuilder::new();
    for _ in 0..nwords {
        let init = rng.next_u64() % 16;
        inits.push(init);
        b_sharded.alloc(init);
        b_oracle.alloc(init);
    }
    let sharded = b_sharded.build_cc_with(nprocs, mode);
    let oracle = b_oracle.build_cc_mutex(nprocs);

    for _ in 0..ops {
        step(&mut rng, &sharded, &oracle, nprocs, nwords);
    }
    // Final totals, every process.
    for p in 0..nprocs {
        assert_eq!(sharded.rmrs(p), oracle.rmrs(p));
        assert_eq!(sharded.ops(p), oracle.ops(p));
    }
    assert_eq!(sharded.total_rmrs(), oracle.total_rmrs());
    // Final values, every word.
    for i in 0..nwords {
        let w = WordId::from_index(i);
        // One more read each — also must agree on its locality.
        let before_s = sharded.rmrs(0);
        let before_o = oracle.rmrs(0);
        assert_eq!(
            sharded.read(0, w),
            oracle.read(0, w),
            "final value of word {i}"
        );
        assert_eq!(sharded.rmrs(0) - before_s, oracle.rmrs(0) - before_o);
    }
}

#[test]
fn seeded_sequences_account_identically_dense() {
    for seed in 0..256 {
        run_seed(seed, 4, 6, 400, EpochMode::Dense);
    }
}

#[test]
fn seeded_sequences_account_identically_sparse() {
    for seed in 0..256 {
        run_seed(seed, 4, 6, 400, EpochMode::Sparse);
    }
}

#[test]
fn wide_configs_account_identically() {
    // Sweep shapes: single word (maximum interleaving), many words
    // (locality), many procs (long foreign-write chains).
    for (seed, nprocs, nwords) in [(1, 1, 1), (2, 2, 1), (3, 8, 3), (4, 3, 32), (5, 16, 16)] {
        run_seed(seed, nprocs, nwords, 1000, EpochMode::Auto);
    }
}

#[test]
fn scripted_write_run_edge_cases_match() {
    // The locality rule's subtle branch is the write-run tracking:
    // `r >= run_start` with interleaved foreign writers. Pin the exact
    // schedules from the cc.rs unit tests against the oracle too.
    let scripts: &[&[(usize, u8)]] = &[
        // (pid, op): 0=read, 1=write, 2=failed-cas, 3=swap, 4=faa
        &[(0, 0), (1, 1), (0, 1), (0, 0)], // foreign write inside own run
        &[(0, 0), (0, 1), (0, 1), (0, 0)], // own run keeps copy valid
        &[(0, 0), (1, 2), (0, 0)],         // failed CAS invalidates
        &[(0, 0), (1, 3), (0, 0), (1, 4), (0, 0)], // swap and faa invalidate
        &[(0, 0), (0, 0), (0, 0)],         // pure spinning is free
    ];
    for script in scripts {
        let mut bs = MemoryBuilder::new();
        let mut bo = MemoryBuilder::new();
        bs.alloc(0);
        bo.alloc(0);
        let sharded = bs.build_cc(2);
        let oracle = bo.build_cc_mutex(2);
        let w = WordId::from_index(0);
        for &(p, op) in *script {
            match op {
                0 => assert_eq!(sharded.read(p, w), oracle.read(p, w)),
                1 => {
                    sharded.write(p, w, 7);
                    oracle.write(p, w, 7);
                }
                2 => assert_eq!(sharded.cas(p, w, 999, 1), oracle.cas(p, w, 999, 1)),
                3 => assert_eq!(sharded.swap(p, w, 5), oracle.swap(p, w, 5)),
                _ => assert_eq!(sharded.faa(p, w, 1), oracle.faa(p, w, 1)),
            }
            for q in 0..2 {
                assert_eq!(sharded.rmrs(q), oracle.rmrs(q), "script {script:?}");
            }
        }
    }
}

#[test]
fn counter_reset_keeps_the_pair_in_lockstep() {
    let mut bs = MemoryBuilder::new();
    let mut bo = MemoryBuilder::new();
    for _ in 0..4 {
        bs.alloc(0);
        bo.alloc(0);
    }
    let sharded = bs.build_cc(3);
    let oracle = bo.build_cc_mutex(3);
    let mut rng = SmallRng::seed_from_u64(42);
    for round in 0..4 {
        for _ in 0..200 {
            step(&mut rng, &sharded, &oracle, 3, 4);
        }
        sharded.reset_counters();
        oracle.reset_counters();
        for p in 0..3 {
            assert_eq!(sharded.rmrs(p), 0, "round {round}");
            assert_eq!(oracle.rmrs(p), 0);
        }
    }
}
