//! Conditional-critical-section API tests: `lock_when` and friends on
//! real OS threads — lost-wakeup freedom, unlock-side evaluation,
//! deregistration hygiene, and the broadcast baseline's equivalence.

use sal_sync::{AbortFlag, AbortReason, AbortableMutex, WakePolicy};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

#[test]
fn lock_when_returns_immediately_when_pred_holds() {
    let m = AbortableMutex::builder(41u64).capacity(1).build();
    let mut h = m.handle();
    {
        let mut g = h.lock_when(|v| *v == 41);
        *g += 1;
    }
    assert_eq!(*h.lock_when(|v| *v == 42), 42);
    assert_eq!(m.waiters(), 0);
}

#[test]
fn lock_when_blocks_until_another_thread_satisfies_it() {
    let m = AbortableMutex::builder(0u64).capacity(2).build();
    let mut setter = m.handle();
    let mut waiter = m.handle();
    let woke = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            let g = waiter.lock_when(|v| *v == 7);
            woke.store(true, Ordering::SeqCst);
            assert_eq!(*g, 7);
        });
        // Let the waiter park (its spin budget is microscopic compared
        // to 20ms), then verify it is actually registered and blocked.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!woke.load(Ordering::SeqCst), "waiter ran before the set");
        *setter.lock() += 7;
    });
    assert!(woke.load(Ordering::SeqCst));
    assert_eq!(m.waiters(), 0);
}

/// Per-waiter conditions: each consumer waits for its own mailbox slot;
/// the producer fills them one at a time. Nothing is lost even though
/// every wakeup is only a hint.
fn mailbox_roundtrip(policy: WakePolicy) {
    const CONSUMERS: usize = 4;
    const ITEMS_EACH: usize = 50;
    let m = AbortableMutex::builder(vec![0u64; CONSUMERS])
        .capacity(CONSUMERS + 1)
        .wake_policy(policy)
        .build();
    let consumed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for c in 0..CONSUMERS {
            let mut h = m.handle();
            let consumed = &consumed;
            s.spawn(move || {
                for _ in 0..ITEMS_EACH {
                    let mut g = h.lock_when(move |boxes: &Vec<u64>| boxes[c] != 0);
                    g[c] = 0;
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let mut producer = m.handle();
        for i in 0..ITEMS_EACH {
            for c in 0..CONSUMERS {
                let mut g = producer.lock_when(move |boxes: &Vec<u64>| boxes[c] == 0);
                g[c] = (i + 1) as u64;
            }
        }
    });
    assert_eq!(
        consumed.load(Ordering::Relaxed),
        (CONSUMERS * ITEMS_EACH) as u64
    );
    assert_eq!(m.waiters(), 0);
    let stats = m.ccs_stats();
    assert!(
        stats.transitions > 0,
        "unlocks with waiters must be counted"
    );
    assert!(stats.wakeups > 0, "parked waiters must have been woken");
    if policy == WakePolicy::Evaluate {
        assert!(stats.evaluated > 0, "evaluate policy must run conditions");
    } else {
        assert_eq!(stats.evaluated, 0, "broadcast never evaluates conditions");
    }
}

#[test]
fn mailbox_fanout_under_evaluation() {
    mailbox_roundtrip(WakePolicy::Evaluate);
}

#[test]
fn broadcast_policy_is_equivalent_just_noisier() {
    mailbox_roundtrip(WakePolicy::Broadcast);
}

#[test]
fn await_when_releases_and_reacquires_in_place() {
    let m = AbortableMutex::builder((0u64, 0u64)).capacity(2).build();
    let mut a = m.handle();
    let mut b = m.handle();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut g = a.lock();
            g.0 = 1; // signal: A is inside and about to await
            g.await_when(|v| v.1 == 1);
            // The guard survived the release/park/re-acquire round trip.
            g.0 = 2;
        });
        s.spawn(|| {
            let mut g = b.lock_when(|v| v.0 == 1);
            g.1 = 1;
            // Dropping the guard must wake A's await.
        });
    });
    assert_eq!(m.into_inner(), (2, 1));
}

#[test]
fn lock_when_for_times_out_and_deregisters() {
    let m = AbortableMutex::builder(0u64).capacity(2).build();
    let mut h = m.handle();
    let start = Instant::now();
    let r = h.lock_when_for(|v| *v == 999, Duration::from_millis(25));
    assert_eq!(r.err(), Some(AbortReason::Deadline));
    assert!(start.elapsed() >= Duration::from_millis(25));
    // The failed wait left nothing behind: no registration, and the
    // lock is free for plain acquisition.
    assert_eq!(m.waiters(), 0);
    assert_eq!(*h.lock(), 0);
}

#[test]
fn lock_when_until_with_a_passed_deadline_still_tries_the_pred_once() {
    let m = AbortableMutex::builder(5u64).capacity(1).build();
    let mut h = m.handle();
    // Expired deadline + satisfiable predicate: Enter semantics say the
    // attempt may still succeed, and the pred check happens under the
    // lock we just won.
    let g = h
        .lock_when_until(|v| *v == 5, Instant::now())
        .expect("satisfied pred on a free lock wins even with an expired deadline");
    assert_eq!(*g, 5);
}

#[test]
fn lock_when_abortable_reports_caller_cancellation() {
    let m = AbortableMutex::builder(0u64).capacity(2).build();
    let flag = AbortFlag::new();
    let mut h = m.handle();
    std::thread::scope(|s| {
        let flag2 = flag.clone();
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            flag2.set();
        });
        let r = h.lock_when_abortable(|v| *v == 999, &flag);
        assert_eq!(r.err(), Some(AbortReason::Caller));
    });
    assert_eq!(m.waiters(), 0);
    assert_eq!(*h.lock(), 0);
}

#[test]
fn await_when_for_keeps_the_lock_on_timeout() {
    let m = AbortableMutex::builder(0u64).capacity(1).build();
    let mut h = m.handle();
    let mut g = h.lock();
    assert!(!g.await_when_for(|v| *v == 999, Duration::from_millis(15)));
    // Still holding: the guard mutates freely and the re-check sees it.
    *g += 1;
    assert!(g.await_when_for(|v| *v == 1, Duration::from_millis(15)));
    drop(g);
    assert_eq!(*h.lock(), 1);
}

#[test]
fn single_item_many_waiters_loses_nothing() {
    // All waiters share the same condition (non-empty pool). Wakeups
    // are hints: every push may wake several waiters, only one of which
    // gets the item — yet every item is consumed exactly once and every
    // waiter eventually completes (no lost wakeups, no deadlock).
    const WAITERS: usize = 6;
    const ITEMS: usize = 60;
    let m = AbortableMutex::builder(0u64).capacity(WAITERS + 1).build();
    let got = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..WAITERS {
            let mut h = m.handle();
            let got = &got;
            s.spawn(move || {
                for _ in 0..ITEMS / WAITERS {
                    let mut g = h.lock_when(|v| *v > 0);
                    *g -= 1;
                    got.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let mut producer = m.handle();
        for _ in 0..ITEMS {
            *producer.lock() += 1;
            std::thread::yield_now();
        }
    });
    assert_eq!(got.load(Ordering::Relaxed), ITEMS as u64);
    assert_eq!(
        m.into_inner(),
        0,
        "every produced unit consumed exactly once"
    );
}

#[test]
fn wait_stats_accumulate_and_expose_futility() {
    let m = AbortableMutex::builder(0u64)
        .capacity(2)
        .wake_policy(WakePolicy::Evaluate)
        .build();
    assert_eq!(m.wake_policy(), WakePolicy::Evaluate);
    let mut a = m.handle();
    let mut b = m.handle();
    std::thread::scope(|s| {
        s.spawn(|| {
            let g = a.lock_when(|v| *v == 3);
            assert_eq!(*g, 3);
        });
        s.spawn(|| {
            for _ in 0..3 {
                std::thread::sleep(Duration::from_millis(5));
                *b.lock() += 1;
            }
        });
    });
    let stats = m.ccs_stats();
    // The waiter parked at least once and was woken exactly at v == 3;
    // the evaluation count reflects the unlock-side checks.
    assert!(stats.waits >= 1, "{stats:?}");
    assert!(stats.wakeups >= 1, "{stats:?}");
    assert!(stats.evaluated >= stats.wakeups, "{stats:?}");
}

#[test]
fn guard_drop_without_waiters_stays_cheap_and_correct() {
    // Plain mutex traffic through the CCS-aware unlock path: no
    // registered waiters means no transitions are recorded.
    let m = AbortableMutex::builder(0u64).capacity(2).build();
    let mut h = m.handle();
    for _ in 0..100 {
        *h.lock() += 1;
    }
    assert_eq!(*h.lock(), 100);
    let stats = m.ccs_stats();
    assert_eq!(stats.transitions, 0, "no waiters, no registry scans");
    assert_eq!(stats.wakeups, 0);
}
