//! Deadline-path tests: `try_lock_for` / `try_lock_until` under real
//! thread contention, and the bounded-steps property of the abort path
//! measured through probe counters.
//!
//! The paper's `Enter` promises two things these tests pin down at the
//! API level: a fired signal is honoured within a *bounded number of
//! the aborter's own steps* (no waiting out the holder), and a signal
//! that fires after the lock was already handed over does NOT retract
//! the acquisition — the guard is still returned.

use sal_core::long_lived::BoundedLongLivedLock;
use sal_core::{Immediate, LockCore};
use sal_memory::{MemoryBuilder, NeverAbort};
use sal_obs::{probed, PassageStats};
use sal_sync::AbortableMutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn deadline_fires_while_queued_abort_is_observed() {
    let m = Arc::new(AbortableMutex::builder(0u64).capacity(5).build());
    let mut holder = m.handle();
    let g = holder.lock();
    let waiting = Arc::new(AtomicU64::new(0));
    let joins: Vec<_> = (0..4)
        .map(|_| {
            let m = Arc::clone(&m);
            let waiting = Arc::clone(&waiting);
            std::thread::spawn(move || {
                let mut h = m.handle();
                waiting.fetch_add(1, Ordering::SeqCst);
                let start = Instant::now();
                let r = h.try_lock_for(Duration::from_millis(20));
                (r.is_none(), start.elapsed())
            })
        })
        .collect();
    while waiting.load(Ordering::SeqCst) < 4 {
        std::thread::yield_now();
    }
    // Keep holding well past every waiter's deadline.
    std::thread::sleep(Duration::from_millis(60));
    for j in joins {
        let (aborted, waited) = j.join().unwrap();
        assert!(aborted, "deadline must abort while the lock is held");
        assert!(
            waited >= Duration::from_millis(20),
            "gave up before the deadline: {waited:?}"
        );
        assert!(
            waited < Duration::from_millis(60),
            "kept waiting long after the deadline: {waited:?}"
        );
    }
    drop(g);
    assert_eq!(
        *holder.lock(),
        0,
        "aborted waiters left the lock consistent"
    );
}

#[test]
fn deadline_after_handoff_still_returns_the_guard() {
    // Deterministic corner: the deadline is already expired, but the
    // lock is free — Enter semantics let the acquisition succeed (the
    // signal is only checked at waits, and there are none).
    let m = AbortableMutex::builder(7u64).capacity(2).build();
    let mut h = m.handle();
    let g = h
        .try_lock_until(Instant::now() - Duration::from_millis(1))
        .expect("free lock: expired deadline must not forfeit the handoff");
    assert_eq!(*g, 7);
    drop(g);

    // Timing variant: the holder releases long before the deadline; the
    // queued waiter must come back with the guard, not an abort.
    let m = Arc::new(AbortableMutex::builder(0u64).capacity(2).build());
    let mut holder = m.handle();
    let g = holder.lock();
    let waiting = Arc::new(AtomicBool::new(false));
    let t = {
        let m = Arc::clone(&m);
        let waiting = Arc::clone(&waiting);
        std::thread::spawn(move || {
            let mut h = m.handle();
            waiting.store(true, Ordering::SeqCst);
            let entered = match h.try_lock_for(Duration::from_secs(5)) {
                Some(mut g) => {
                    *g += 1;
                    true
                }
                None => false,
            };
            entered
        })
    };
    while !waiting.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(10));
    drop(g); // handoff well inside the waiter's deadline
    assert!(t.join().unwrap(), "handoff before the deadline must enter");
    assert_eq!(*holder.lock(), 1);
}

/// Aborting against a held lock must cost a bounded number of the
/// aborter's own shared-memory steps — the paper's headline — and the
/// probe's per-passage op counter is how we observe it. The lock runs
/// over `probed(RawMemory)` so every shared-memory operation of a
/// passage is attributed to it; a pre-fired signal means the aborter
/// never legitimately spins, so its op count IS the abort-path cost.
#[test]
fn aborts_against_a_held_lock_take_bounded_steps() {
    for threads in [4usize, 8, 16] {
        let stats = PassageStats::new();
        let mut b = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout(&mut b, threads, 8);
        let raw = b.build_raw(threads);
        let mem = probed(&raw, &stats);

        // Main thread (pid 0) takes and holds the lock.
        assert!(lock.enter_core(&mem, 0, &NeverAbort, &stats).entered());

        let attempts_per_thread = 25usize;
        std::thread::scope(|s| {
            for p in 1..threads {
                let lock = &lock;
                let mem = &mem;
                let stats = &stats;
                s.spawn(move || {
                    for _ in 0..attempts_per_thread {
                        let outcome = lock.enter_core(mem, p, &Immediate, stats);
                        assert!(!outcome.entered(), "the lock is demonstrably held");
                    }
                });
            }
        });
        lock.exit_core(&mem, 0, &stats);

        let records = stats.records();
        let aborted: Vec<_> = records.iter().filter(|r| !r.entered).collect();
        assert_eq!(aborted.len(), (threads - 1) * attempts_per_thread);
        // The bound: every aborted passage's op count stays far below
        // anything resembling a wait loop. The algorithm's abort path
        // is O(log_W N + W) shared steps; 300 is generous for N ≤ 16,
        // W = 8, while a single spin-wait iteration loop would blow
        // through it immediately.
        let max_ops = aborted.iter().map(|r| r.ops).max().unwrap();
        assert!(
            max_ops <= 300,
            "{threads} threads: an aborted passage took {max_ops} shared-memory ops \
             — abort path is not step-bounded"
        );
    }
}

#[test]
fn contended_timed_locking_counts_and_integrity() {
    // Mixed outcome accounting under the probe: every attempt finishes
    // as exactly one of entered/aborted, and the protected counter
    // equals the entered count (no lost updates through abort paths).
    let stats = PassageStats::new();
    let m = Arc::new(
        AbortableMutex::builder(0u64)
            .capacity(6)
            .probe(stats.clone())
            .build(),
    );
    let attempts_per_thread = 200u64;
    let acquired = Arc::new(AtomicU64::new(0));
    let joins: Vec<_> = (0..6)
        .map(|_| {
            let m = Arc::clone(&m);
            let acquired = Arc::clone(&acquired);
            std::thread::spawn(move || {
                let mut h = m.handle();
                for i in 0..attempts_per_thread {
                    let deadline = Duration::from_micros(50 + (i % 7) * 40);
                    if let Some(mut g) = h.try_lock_for(deadline) {
                        *g += 1;
                        acquired.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for j in joins {
        j.join().unwrap();
    }
    let summary = stats.summary();
    assert_eq!(summary.entered + summary.aborted, 6 * attempts_per_thread);
    assert_eq!(summary.entered, acquired.load(Ordering::Relaxed));
    let m = Arc::try_unwrap(m).expect("all threads joined");
    assert_eq!(
        m.into_inner(),
        summary.entered,
        "every entered passage incremented exactly once"
    );
}
