//! Guided-search behaviour on real lock workloads: RMR witness
//! hunting, dropped-work accounting, determinism across worker counts,
//! and the coverage-feedback fuzzer actually finding races.

use sal_bench::{worst_case_sweep, ExploreCell, LockKind};
use sal_memory::{Layered, Mem, MemoryBuilder};
use sal_runtime::{
    explore_guided, simulate, ExploreOptions, ForcedSchedule, GuidedOutcome, OpTraceSink,
    SimOptions, Strategy,
};

/// Best-first search must rediscover, within a fixed run budget, a
/// schedule at least as expensive as the hand-crafted adversarial
/// worst-case cells of `tests/rmr_bounds.rs` (the `worst_case_sweep`
/// shape: all but two processes abort while queued).
#[test]
fn best_first_rediscovers_the_worst_case_witness() {
    let kind = LockKind::OneShot { b: 4 };
    let n = 5;
    let reference = worst_case_sweep(kind, n, 3).unwrap();
    assert!(reference.mutex_ok);

    let cell = ExploreCell::contended(kind, n);
    let opts = ExploreOptions {
        max_deviations: 2,
        max_runs: 600,
        max_branch_depth: 120,
        ..ExploreOptions::default()
    };
    let r = explore_guided(&opts, Strategy::BestFirst, |p| cell.guided_run(p));
    assert!(
        r.violation.is_none(),
        "witness hunt found a real bug: {:?}",
        r.violation
    );
    assert!(
        r.best_cost >= reference.max_entered_rmrs,
        "best-first reached only {} RMRs in {} runs; the hand-crafted witness costs {}",
        r.best_cost,
        r.runs,
        reference.max_entered_rmrs
    );
    assert!(
        !r.best_schedule.is_empty(),
        "the witness schedule must be reported"
    );
}

/// DPOR visits a fraction of BFS's runs on a contended cell, reports
/// its dropped work honestly, and still agrees on safety.
#[test]
fn dpor_prunes_aggressively_and_stays_safe() {
    let cell = ExploreCell {
        aborters: 1,
        ..ExploreCell::new(LockKind::OneShot { b: 4 }, 3)
    };
    let opts = ExploreOptions {
        max_deviations: 2,
        max_runs: 20_000,
        max_branch_depth: 80,
        ..ExploreOptions::default()
    };
    let bfs = explore_guided(&opts, Strategy::Bfs, |p| cell.guided_run(p));
    let dpor = explore_guided(&opts, Strategy::Dpor, |p| cell.guided_run(p));
    assert!(bfs.violation.is_none() && dpor.violation.is_none());
    assert!(!bfs.truncated && !dpor.truncated);
    assert!(
        dpor.runs * 4 <= bfs.runs,
        "DPOR should collapse equivalent interleavings: {} vs BFS {}",
        dpor.runs,
        bfs.runs
    );
    assert!(dpor.pruned > 0, "no children pruned on a contended cell?");
    assert_eq!(bfs.pruned, 0, "BFS must stay exhaustive");
    assert_eq!(bfs.deduped, 0, "BFS must expand everything");
    assert_eq!(
        bfs.best_cost, dpor.best_cost,
        "pruning changed the observed worst passage cost"
    );
}

/// Every strategy's full result — including the exact schedule of every
/// executed run — is identical at any worker count.
#[test]
fn results_are_identical_at_any_jobs_count() {
    let cell = ExploreCell {
        aborters: 1,
        ..ExploreCell::new(LockKind::OneShot { b: 2 }, 3)
    };
    for strategy in [
        Strategy::Dpor,
        Strategy::BestFirst,
        Strategy::Fuzz { seed: 7 },
    ] {
        let run_at = |jobs: usize| {
            let opts = ExploreOptions {
                max_deviations: 2,
                max_runs: 150,
                max_branch_depth: 80,
                jobs,
                collect_schedules: true,
                ..ExploreOptions::default()
            };
            explore_guided(&opts, strategy, |p| cell.guided_run(p))
        };
        let a = run_at(1);
        let b = run_at(4);
        assert_eq!(a.runs, b.runs, "{}", strategy.label());
        assert_eq!(
            a.visited,
            b.visited,
            "{}: executed different schedules",
            strategy.label()
        );
        assert_eq!(a.distinct_states, b.distinct_states, "{}", strategy.label());
        assert_eq!(a.pruned, b.pruned, "{}", strategy.label());
        assert_eq!(a.deduped, b.deduped, "{}", strategy.label());
        assert_eq!(a.best_cost, b.best_cost, "{}", strategy.label());
        assert_eq!(a.best_schedule, b.best_schedule, "{}", strategy.label());
        assert_eq!(a.violation, b.violation, "{}", strategy.label());
    }
}

/// The Jayanti–Jayanti lock as a registry cell under guided search:
/// exhaustive BFS and pruned DPOR must agree on safety *and* on the
/// worst observed passage cost of a contended abandoning cell.
#[test]
fn jj_amortized_bfs_and_dpor_agree_on_contended_cell() {
    let cell = ExploreCell {
        aborters: 1,
        ..ExploreCell::new(LockKind::JjAmortized, 3)
    };
    let opts = ExploreOptions {
        max_deviations: 1,
        max_runs: 20_000,
        max_branch_depth: 120,
        ..ExploreOptions::default()
    };
    let bfs = explore_guided(&opts, Strategy::Bfs, |p| cell.guided_run(p));
    let dpor = explore_guided(&opts, Strategy::Dpor, |p| cell.guided_run(p));
    assert!(bfs.violation.is_none(), "BFS: {:?}", bfs.violation);
    assert!(dpor.violation.is_none(), "DPOR: {:?}", dpor.violation);
    assert!(!bfs.truncated && !dpor.truncated, "budget too small");
    assert_eq!(
        bfs.best_cost, dpor.best_cost,
        "pruning changed the observed worst passage cost"
    );
    assert!(
        dpor.runs <= bfs.runs,
        "DPOR explored more than BFS: {} vs {}",
        dpor.runs,
        bfs.runs
    );
}

/// The racy test-then-set lock from the explorer's own tests, with an
/// op trace — mutation fodder for the fuzzer.
fn broken_lock_guided(policy: ForcedSchedule) -> GuidedOutcome {
    let mut b = MemoryBuilder::new();
    let flag = b.alloc(0);
    let in_cs = b.alloc(0);
    let max_seen = b.alloc(0);
    let mem = b.build_cc(2);
    let traced = Layered::over(&mem, OpTraceSink::new());
    let report = simulate(&traced, 2, Box::new(policy), SimOptions::default(), |ctx| {
        loop {
            if ctx.mem.read(ctx.pid, flag) == 0 {
                ctx.mem.write(ctx.pid, flag, 1); // should be CAS!
                break;
            }
        }
        let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
        let seen = ctx.mem.read(ctx.pid, max_seen);
        if inside > seen {
            ctx.mem.write(ctx.pid, max_seen, inside);
        }
        ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
        ctx.mem.write(ctx.pid, flag, 0);
    });
    let ops = traced.into_layer().take();
    let verdict = (|| {
        report.map_err(|e| e.to_string())?;
        if mem.read(0, max_seen) > 1 {
            Err("two processes in the CS".into())
        } else {
            Ok(())
        }
    })();
    GuidedOutcome {
        verdict,
        ops,
        cost: 0,
    }
}

/// The seeded fuzzer finds the test-then-set race within its budget —
/// and, being a deterministic function of the seed, finds the same
/// witness every time.
#[test]
fn fuzzer_finds_the_broken_lock_race_deterministically() {
    let opts = ExploreOptions {
        max_deviations: 2,
        max_runs: 2_000,
        max_branch_depth: 100,
        ..ExploreOptions::default()
    };
    let a = explore_guided(&opts, Strategy::Fuzz { seed: 1 }, broken_lock_guided);
    assert!(
        a.violation.is_some(),
        "fuzzer missed the race in {} runs ({} distinct states)",
        a.runs,
        a.distinct_states
    );
    let b = explore_guided(&opts, Strategy::Fuzz { seed: 1 }, broken_lock_guided);
    assert_eq!(a.violation, b.violation, "same seed, same witness");
    assert_eq!(a.runs, b.runs);
}

/// Truncated work is counted, not silently dropped.
#[test]
fn budget_truncation_reports_unexecuted_prefixes() {
    let cell = ExploreCell {
        aborters: 1,
        ..ExploreCell::new(LockKind::OneShot { b: 2 }, 3)
    };
    let opts = ExploreOptions {
        max_deviations: 2,
        max_runs: 10,
        max_branch_depth: 80,
        ..ExploreOptions::default()
    };
    let r = explore_guided(&opts, Strategy::Bfs, |p| cell.guided_run(p));
    assert_eq!(r.runs, 10);
    assert!(r.truncated);
    assert!(
        r.truncated_runs > 0,
        "a truncated search must say how much it dropped"
    );
}
