//! Tier-2 lease determinism suite: the step-lease scheduler
//! ([`WorkloadSpec::lease`]) is a pure transport optimisation — every
//! observable artifact of a run (step counts, per-process outcomes,
//! per-passage RMR records, the step-stamped event log, safety
//! verdicts, exploration traces, replay recordings) must be
//! byte-identical at every lease cap: `1` (legacy per-step), small
//! caps, large caps, and `0` (unbounded).

use sal_bench::{build_lock, LockKind};
use sal_runtime::{
    explore, run_lock, run_one_shot, BurstySchedule, ExploreOptions, ForcedSchedule, ProcPlan,
    RandomSchedule, Recorder, Recording, SchedulePolicy, WorkloadReport, WorkloadSpec,
};

/// The cap sweep every test runs: per-step reference, short lease, long
/// lease, unbounded.
const CAPS: [u64; 4] = [1, 4, 64, 0];

/// Render everything a run produced into one string; equal strings ⇒
/// the executions are observably identical.
fn fingerprint(report: &WorkloadReport) -> String {
    format!(
        "steps={}\noutcomes={:?}\npassages={:?}\nevents={:?}\nmutex={:?}\nfcfs={:?}",
        report.steps,
        report.outcomes,
        report.passages,
        report.events,
        report.mutex_check,
        report.fcfs_check,
    )
}

/// Run one lock workload at the given lease cap.
fn run_cell(
    kind: LockKind,
    n: usize,
    plans: Vec<ProcPlan>,
    lease: u64,
    policy: Box<dyn SchedulePolicy>,
) -> WorkloadReport {
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(kind, n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 2_000_000,
        lease,
    };
    let report = if kind.one_shot() {
        run_one_shot(&*built.lock, &built.mem, built.cs_word, &spec, policy)
    } else {
        run_lock(&*built.lock, &built.mem, built.cs_word, &spec, policy)
    }
    .expect("simulation failed");
    assert!(report.mutex_check.is_ok());
    report
}

#[test]
fn long_lived_sweep_cell_is_byte_identical_at_every_cap() {
    // A contended long-lived cell with an aborter in the mix, under
    // both a random and a bursty schedule (bursty grants long leases).
    for seed_policy in [0u8, 1u8] {
        let plans = || {
            let mut p = vec![ProcPlan::normal(3); 3];
            p.push(ProcPlan::aborter(3, 24));
            p
        };
        let policy = |s: u64| -> Box<dyn SchedulePolicy> {
            if seed_policy == 0 {
                Box::new(RandomSchedule::seeded(s))
            } else {
                Box::new(BurstySchedule::seeded(s, 0.9))
            }
        };
        let reference = fingerprint(&run_cell(
            LockKind::LongLived { b: 4 },
            4,
            plans(),
            1,
            policy(5),
        ));
        for cap in CAPS {
            let fp = fingerprint(&run_cell(
                LockKind::LongLived { b: 4 },
                4,
                plans(),
                cap,
                policy(5),
            ));
            assert_eq!(
                fp, reference,
                "policy {seed_policy}: lease cap {cap} diverged from per-step"
            );
        }
    }
}

#[test]
fn one_shot_worst_case_cell_is_byte_identical_at_every_cap() {
    let plans = || {
        vec![
            ProcPlan::normal(1),
            ProcPlan::aborter(1, 32),
            ProcPlan::aborter(1, 32),
            ProcPlan::normal(1),
        ]
    };
    let reference = fingerprint(&run_cell(
        LockKind::OneShot { b: 4 },
        4,
        plans(),
        1,
        Box::new(RandomSchedule::seeded(9)),
    ));
    for cap in CAPS {
        let fp = fingerprint(&run_cell(
            LockKind::OneShot { b: 4 },
            4,
            plans(),
            cap,
            Box::new(RandomSchedule::seeded(9)),
        ));
        assert_eq!(fp, reference, "lease cap {cap} diverged from per-step");
    }
}

#[test]
fn abort_deadline_lands_mid_lease_without_drifting() {
    // Bursty at 0.95 grants runs of ~20 steps, far past the aborter's
    // 6-step patience: its deadline routinely falls inside a lease. The
    // abort must still fire at exactly the same global step as the
    // per-step scheduler delivers it.
    let plans = || {
        vec![
            ProcPlan::normal(2),
            ProcPlan::normal(2),
            ProcPlan::aborter(2, 6),
        ]
    };
    let run = |cap: u64| {
        run_cell(
            LockKind::LongLived { b: 4 },
            3,
            plans(),
            cap,
            Box::new(BurstySchedule::seeded(13, 0.95)),
        )
    };
    let reference = run(1);
    let aborted: usize = reference.outcomes.iter().map(|&(_, a)| a).sum();
    assert!(aborted > 0, "workload must actually abort to test delivery");
    let ref_fp = fingerprint(&reference);
    for cap in CAPS {
        assert_eq!(fingerprint(&run(cap)), ref_fp, "cap {cap} drifted");
    }
}

#[test]
fn process_finishing_mid_lease_is_byte_identical() {
    // Asymmetric passage counts: process 0 finishes long before the
    // others, frequently while holding a bursty lease — the gate must
    // return the unused remainder without perturbing the schedule.
    let plans = || {
        vec![
            ProcPlan::normal(1),
            ProcPlan::normal(4),
            ProcPlan::normal(4),
        ]
    };
    let run = |cap: u64| {
        run_cell(
            LockKind::LongLived { b: 4 },
            3,
            plans(),
            cap,
            Box::new(BurstySchedule::seeded(17, 0.9)),
        )
    };
    let reference = run(1);
    let entered: usize = reference.outcomes.iter().map(|&(e, _)| e).sum();
    assert_eq!(entered, 9, "no-abort workload must complete every passage");
    let ref_fp = fingerprint(&reference);
    for cap in CAPS {
        assert_eq!(fingerprint(&run(cap)), ref_fp, "cap {cap} drifted");
    }
}

#[test]
fn exploration_trace_is_identical_at_every_cap() {
    // The explorer's visited-schedule set and run count derive from the
    // recorded decision traces; leases must not change a single one.
    let explore_at = |cap: u64| {
        let run = |policy: ForcedSchedule| -> Result<(), String> {
            let plans = vec![
                ProcPlan::normal(1),
                ProcPlan::aborter(1, 4),
                ProcPlan::normal(1),
            ];
            let attempts: usize = plans.iter().map(|p| p.passages).sum();
            let built = build_lock(LockKind::OneShot { b: 2 }, 3, attempts);
            let spec = WorkloadSpec {
                plans,
                cs_ops: 2,
                max_steps: 100_000,
                lease: cap,
            };
            let report = run_one_shot(
                &*built.lock,
                &built.mem,
                built.cs_word,
                &spec,
                Box::new(policy),
            )
            .map_err(|e| e.to_string())?;
            report.mutex_check.as_ref().map_err(|v| format!("{v:?}"))?;
            let resolved: usize = report.outcomes.iter().map(|&(e, a)| e + a).sum();
            if resolved != attempts {
                return Err(format!("only {resolved}/{attempts} attempts resolved"));
            }
            Ok(())
        };
        explore(
            &ExploreOptions {
                max_deviations: 1,
                max_runs: 600,
                max_branch_depth: 50,
                jobs: 1,
                collect_schedules: true,
                ..ExploreOptions::default()
            },
            run,
        )
    };
    let reference = explore_at(1);
    assert!(
        reference.runs > 20,
        "explored only {} schedules",
        reference.runs
    );
    assert!(reference.violation.is_none());
    for cap in CAPS {
        let result = explore_at(cap);
        assert_eq!(result.runs, reference.runs, "cap {cap} run count drifted");
        assert_eq!(result.truncated, reference.truncated);
        assert_eq!(
            result.visited, reference.visited,
            "cap {cap} explored a different schedule set"
        );
        assert!(result.violation.is_none());
    }
}

#[test]
fn recording_and_replay_are_byte_identical_at_every_cap() {
    let plans = || vec![ProcPlan::normal(3); 3];
    // Record the same bursty run once per cap: the captured decision
    // sequence must not depend on lease batching.
    let record_at = |cap: u64| -> (Recording, String) {
        let recorder = Recorder::wrap(Box::new(BurstySchedule::seeded(23, 0.9)));
        let handle = recorder.recording();
        let report = run_cell(
            LockKind::LongLived { b: 4 },
            3,
            plans(),
            cap,
            Box::new(recorder),
        );
        (handle.snapshot(), fingerprint(&report))
    };
    let (reference_rec, reference_fp) = record_at(1);
    assert!(!reference_rec.is_empty());
    for cap in CAPS {
        let (rec, fp) = record_at(cap);
        assert_eq!(
            rec, reference_rec,
            "cap {cap} recorded a different schedule"
        );
        assert_eq!(fp, reference_fp, "cap {cap} executed differently");
    }
    // Replaying the recording reproduces the run exactly — at every cap.
    for cap in CAPS {
        let report = run_cell(
            LockKind::LongLived { b: 4 },
            3,
            plans(),
            cap,
            Box::new(reference_rec.clone().into_policy()),
        );
        assert_eq!(
            fingerprint(&report),
            reference_fp,
            "replay at cap {cap} diverged from the recorded run"
        );
    }
}
