//! Model-checking-style integration tests of the long-lived
//! transformation (Figure 5) in both implementations, under seeded
//! random schedules with repeated passages and aborts: mutual exclusion,
//! starvation freedom (all passages complete under fair schedules), and
//! correct instance hand-over across switches.

use sal_bench::{build_lock, LockKind};
use sal_memory::Mem;
use sal_runtime::{
    run_lock, BurstySchedule, ProcPlan, RandomSchedule, SchedulePolicy, WorkloadSpec,
};

fn check(kind: LockKind, plans: Vec<ProcPlan>, policy: Box<dyn SchedulePolicy>, tag: &str) {
    let n = plans.len();
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(kind, n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 20_000_000,
        lease: sal_runtime::default_lease(),
    };
    let report = run_lock(&*built.lock, &built.mem, built.cs_word, &spec, policy)
        .unwrap_or_else(|e| panic!("{tag}: {e}"));
    assert!(
        report.mutex_check.is_ok(),
        "{tag}: {:?}",
        report.mutex_check
    );
    let resolved: usize = report.outcomes.iter().map(|o| o.0 + o.1).sum();
    assert_eq!(resolved, attempts, "{tag}: unresolved attempts");
    // Normal processes never abort: starvation freedom means they all
    // entered every passage.
    for (pid, plan) in spec.plans.iter().enumerate() {
        if matches!(plan.role, sal_runtime::Role::Normal) {
            assert_eq!(
                report.outcomes[pid].0, plan.passages,
                "{tag}: process {pid} starved"
            );
        }
    }
    // CS integrity.
    let entered = report.total_entered();
    assert_eq!(
        built.mem.read(0, built.cs_word),
        (entered * spec.cs_ops) as u64,
        "{tag}: CS effects inconsistent"
    );
}

#[test]
fn bounded_repeated_passages_no_aborts() {
    for seed in 0..40 {
        check(
            LockKind::LongLived { b: 4 },
            vec![ProcPlan::normal(4); 4],
            Box::new(RandomSchedule::seeded(seed)),
            &format!("bounded clean seed={seed}"),
        );
    }
}

#[test]
fn simple_repeated_passages_no_aborts() {
    for seed in 0..40 {
        check(
            LockKind::LongLivedSimple { b: 4 },
            vec![ProcPlan::normal(4); 4],
            Box::new(RandomSchedule::seeded(seed)),
            &format!("simple clean seed={seed}"),
        );
    }
}

#[test]
fn bounded_with_aborters_across_switches() {
    for seed in 0..40 {
        let plans = vec![
            ProcPlan::normal(3),
            ProcPlan::aborter(3, 25),
            ProcPlan::normal(3),
            ProcPlan::aborter(3, 10),
            ProcPlan::normal(3),
        ];
        check(
            LockKind::LongLived { b: 2 },
            plans,
            Box::new(RandomSchedule::seeded(seed)),
            &format!("bounded aborts seed={seed}"),
        );
    }
}

#[test]
fn simple_with_aborters_across_switches() {
    for seed in 0..40 {
        let plans = vec![
            ProcPlan::normal(3),
            ProcPlan::aborter(3, 25),
            ProcPlan::normal(3),
            ProcPlan::aborter(3, 10),
        ];
        check(
            LockKind::LongLivedSimple { b: 2 },
            plans,
            Box::new(RandomSchedule::seeded(seed)),
            &format!("simple aborts seed={seed}"),
        );
    }
}

#[test]
fn bursty_schedules_stress_the_spin_node_protocol() {
    // Bursty schedules make one process race far ahead — repeatedly
    // re-entering and hitting the "spn == oldSpn" spin path while others
    // lag, exercising announce/validate/reclaim.
    for seed in 0..40 {
        check(
            LockKind::LongLived { b: 2 },
            vec![ProcPlan::normal(5); 3],
            Box::new(BurstySchedule::seeded(seed, 0.9)),
            &format!("bursty seed={seed}"),
        );
    }
}

#[test]
fn two_process_ping_pong_many_switches() {
    // Every passage drops the refcount to zero, so every passage
    // switches instances: maximal recycling pressure.
    for seed in 0..20 {
        check(
            LockKind::LongLived { b: 2 },
            vec![ProcPlan::normal(12); 2],
            Box::new(RandomSchedule::seeded(seed)),
            &format!("ping-pong seed={seed}"),
        );
    }
}

#[test]
fn single_process_solo_recycling() {
    check(
        LockKind::LongLived { b: 2 },
        vec![ProcPlan::normal(30)],
        Box::new(RandomSchedule::seeded(1)),
        "solo recycling",
    );
}

#[test]
fn all_aborters_then_a_late_winner() {
    for seed in 0..25 {
        let mut plans = vec![ProcPlan::aborter(2, 0); 5];
        plans.push(ProcPlan::normal(2));
        check(
            LockKind::LongLived { b: 4 },
            plans,
            Box::new(RandomSchedule::seeded(seed)),
            &format!("late winner seed={seed}"),
        );
    }
}

// ---- the Jayanti–Jayanti constant-amortized lock, same gauntlet ----

#[test]
fn jj_repeated_passages_no_aborts() {
    for seed in 0..40 {
        check(
            LockKind::JjAmortized,
            vec![ProcPlan::normal(4); 4],
            Box::new(RandomSchedule::seeded(seed)),
            &format!("jj clean seed={seed}"),
        );
    }
}

#[test]
fn jj_with_aborters_depositing_abandoned_nodes() {
    // Aborters queue, abandon, and re-enter: the exit-walk consumption
    // path (the amortization's potential function) runs constantly.
    for seed in 0..40 {
        let plans = vec![
            ProcPlan::normal(3),
            ProcPlan::aborter(3, 25),
            ProcPlan::normal(3),
            ProcPlan::aborter(3, 10),
            ProcPlan::normal(3),
        ];
        check(
            LockKind::JjAmortized,
            plans,
            Box::new(RandomSchedule::seeded(seed)),
            &format!("jj aborts seed={seed}"),
        );
    }
}

#[test]
fn jj_bursty_schedules_stress_node_reclamation() {
    // A racing process re-enters before its previous node is consumed,
    // hitting the reclaim-wait at the head of enter with POOL=2 nodes.
    for seed in 0..40 {
        check(
            LockKind::JjAmortized,
            vec![ProcPlan::normal(5); 3],
            Box::new(BurstySchedule::seeded(seed, 0.9)),
            &format!("jj bursty seed={seed}"),
        );
    }
}

#[test]
fn jj_all_aborters_then_a_late_winner() {
    // Every abandoned node must be consumed by someone's exit walk (or
    // the empty-queue tail reset) for the late normal process to finish.
    for seed in 0..25 {
        let mut plans = vec![ProcPlan::aborter(2, 0); 5];
        plans.push(ProcPlan::normal(2));
        check(
            LockKind::JjAmortized,
            plans,
            Box::new(RandomSchedule::seeded(seed)),
            &format!("jj late winner seed={seed}"),
        );
    }
}
