//! Path-coverage evidence for the long-lived lock: the rare branches of
//! the Figure-5 protocol (the `spn == oldSpn` spin, the failed
//! descriptor CAS) are not just *safe* under random schedules — this
//! suite proves they actually *execute* across a seed sweep, so the
//! model checks genuinely cover them.

use sal_core::long_lived::BoundedLongLivedLock;
use sal_memory::{Mem, MemoryBuilder, NeverAbort};
use sal_runtime::{simulate, BurstySchedule, RandomSchedule, SimOptions};

fn run_contended(seed: u64, bursty: bool) -> (u64, u64, u64, u64) {
    let n = 4;
    let mut b = MemoryBuilder::new();
    let lock = BoundedLongLivedLock::layout(&mut b, n, 2);
    let cs = b.alloc(0);
    let mem = b.build_cc(n);
    let policy: Box<dyn sal_runtime::SchedulePolicy> = if bursty {
        Box::new(BurstySchedule::seeded(seed, 0.9))
    } else {
        Box::new(RandomSchedule::seeded(seed))
    };
    simulate(
        &mem,
        n,
        policy,
        SimOptions {
            max_steps: 10_000_000,
            abort_plan: vec![],
            lease: sal_runtime::default_lease(),
        },
        |ctx| {
            for _ in 0..6 {
                assert!(lock.enter(ctx.mem, ctx.pid, &NeverAbort));
                ctx.mem.faa(ctx.pid, cs, 1);
                lock.exit(ctx.mem, ctx.pid);
            }
        },
    )
    .unwrap();
    assert_eq!(mem.read(0, cs), (n * 6) as u64);
    lock.stats().snapshot()
}

#[test]
fn contention_exercises_every_protocol_path() {
    let mut total_spins = 0;
    let mut total_skips = 0;
    let mut total_switches = 0;
    let mut total_failures = 0;
    for seed in 0..30 {
        let (spins, skips, switches, failures) = run_contended(seed, seed % 2 == 0);
        total_spins += spins;
        total_skips += skips;
        total_switches += switches;
        total_failures += failures;
        // Every run with 24 passages must switch instances at least once.
        assert!(
            switches >= 1,
            "seed {seed}: no instance switch in 24 passages"
        );
    }
    assert!(
        total_spins > 0,
        "the spn == oldSpn spin path never ran in 30 seeds — schedules too tame"
    );
    assert!(
        total_switches >= 30,
        "switching is the protocol's heartbeat: {total_switches}"
    );
    // CAS failures (a racer incremented the refcount between lines 70
    // and 76) are schedule luck; across 30 seeds with bursty schedules
    // we expect at least one.
    assert!(
        total_failures + total_skips > 0,
        "no descriptor race observed across 30 seeds"
    );
}

#[test]
fn solo_runs_switch_without_spinning() {
    let mut b = MemoryBuilder::new();
    let lock = BoundedLongLivedLock::layout(&mut b, 1, 2);
    let mem = b.build_cc(1);
    for _ in 0..10 {
        assert!(lock.enter(&mem, 0, &NeverAbort));
        lock.exit(&mem, 0);
    }
    let (spins, _skips, switches, failures) = lock.stats().snapshot();
    assert_eq!(spins, 0, "a solo process never waits");
    assert_eq!(switches, 10, "every solo passage switches");
    assert_eq!(failures, 0);
}
