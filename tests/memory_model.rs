//! Property tests of the CC memory's RMR accounting against a naive
//! reference implementation.
//!
//! `CcMemory` avoids `O(words × procs)` space with a per-word
//! write-run trick (see `crates/memory/src/cc.rs`); this suite checks,
//! op by op, that it charges *exactly* the same RMRs as the obvious
//! model — a per-word set of processes holding a valid cached copy:
//!
//! * read by `p`: RMR iff `p ∉ valid(w)`; afterwards `p ∈ valid(w)`;
//! * write-type by `p`: always an RMR; afterwards `valid(w)` loses
//!   everyone but keeps `p`'s membership unchanged (only *another*
//!   process's write invalidates `p`'s copy).

use proptest::prelude::*;
use sal_memory::{Mem, MemoryBuilder, Pid};
use std::collections::HashSet;

#[derive(Clone, Debug)]
enum Op {
    Read(Pid, usize),
    Write(Pid, usize, u64),
    Cas(Pid, usize, u64, u64),
    Faa(Pid, usize, u64),
    Swap(Pid, usize, u64),
}

fn op_strategy(nprocs: usize, nwords: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nprocs, 0..nwords).prop_map(|(p, w)| Op::Read(p, w)),
        (0..nprocs, 0..nwords, 0..8u64).prop_map(|(p, w, v)| Op::Write(p, w, v)),
        (0..nprocs, 0..nwords, 0..8u64, 0..8u64).prop_map(|(p, w, o, n)| Op::Cas(p, w, o, n)),
        (0..nprocs, 0..nwords, 0..4u64).prop_map(|(p, w, v)| Op::Faa(p, w, v)),
        (0..nprocs, 0..nwords, 0..8u64).prop_map(|(p, w, v)| Op::Swap(p, w, v)),
    ]
}

/// The naive model: explicit valid-copy sets.
struct NaiveCc {
    values: Vec<u64>,
    valid: Vec<HashSet<Pid>>,
    rmrs: Vec<u64>,
}

impl NaiveCc {
    fn new(nwords: usize, nprocs: usize) -> Self {
        NaiveCc {
            values: vec![0; nwords],
            valid: vec![HashSet::new(); nwords],
            rmrs: vec![0; nprocs],
        }
    }

    fn read(&mut self, p: Pid, w: usize) -> u64 {
        if !self.valid[w].contains(&p) {
            self.rmrs[p] += 1;
            self.valid[w].insert(p);
        }
        self.values[w]
    }

    fn write_type(&mut self, p: Pid, w: usize, f: impl FnOnce(&mut u64)) {
        self.rmrs[p] += 1;
        let keep = self.valid[w].contains(&p);
        self.valid[w].clear();
        if keep {
            self.valid[w].insert(p);
        }
        f(&mut self.values[w]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn cc_memory_charges_exactly_like_the_naive_model(
        ops in proptest::collection::vec(op_strategy(4, 3), 1..120),
    ) {
        let nprocs = 4;
        let nwords = 3;
        let mut b = MemoryBuilder::new();
        let words: Vec<_> = (0..nwords).map(|_| b.alloc(0)).collect();
        let mem = b.build_cc(nprocs);
        let mut naive = NaiveCc::new(nwords, nprocs);

        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Read(p, w) => {
                    let got = mem.read(p, words[w]);
                    let want = naive.read(p, w);
                    prop_assert_eq!(got, want, "op {}: read value", i);
                }
                Op::Write(p, w, v) => {
                    mem.write(p, words[w], v);
                    naive.write_type(p, w, |cell| *cell = v);
                }
                Op::Cas(p, w, old, new) => {
                    let got = mem.cas(p, words[w], old, new);
                    let want = naive.values[w] == old;
                    naive.write_type(p, w, |cell| {
                        if *cell == old {
                            *cell = new;
                        }
                    });
                    prop_assert_eq!(got, want, "op {}: cas outcome", i);
                }
                Op::Faa(p, w, add) => {
                    let got = mem.faa(p, words[w], add);
                    let mut want = 0;
                    naive.write_type(p, w, |cell| {
                        want = *cell;
                        *cell = cell.wrapping_add(add);
                    });
                    prop_assert_eq!(got, want, "op {}: faa previous", i);
                }
                Op::Swap(p, w, v) => {
                    let got = mem.swap(p, words[w], v);
                    let mut want = 0;
                    naive.write_type(p, w, |cell| {
                        want = std::mem::replace(cell, v);
                    });
                    prop_assert_eq!(got, want, "op {}: swap previous", i);
                }
            }
            // The heart of the test: identical RMR charges after every op.
            for p in 0..nprocs {
                prop_assert_eq!(
                    mem.rmrs(p),
                    naive.rmrs[p],
                    "op {}: rmr divergence for process {}", i, p
                );
            }
        }
    }

    /// DSM charging: every non-home access is exactly one RMR.
    #[test]
    fn dsm_memory_charges_by_home(
        homes in proptest::collection::vec(0usize..3, 1..6),
        ops in proptest::collection::vec(op_strategy(3, 5), 1..80),
    ) {
        let nprocs = 3;
        let mut b = MemoryBuilder::new();
        let words: Vec<_> = homes.iter().map(|&h| b.alloc_at(h, 0)).collect();
        let mem = b.build_dsm(nprocs);
        let mut expected = vec![0u64; nprocs];
        for op in &ops {
            let (p, w) = match *op {
                Op::Read(p, w) | Op::Write(p, w, _) | Op::Faa(p, w, _) | Op::Swap(p, w, _) => (p, w),
                Op::Cas(p, w, _, _) => (p, w),
            };
            let w = w % words.len();
            match *op {
                Op::Read(..) => { mem.read(p, words[w]); }
                Op::Write(_, _, v) => mem.write(p, words[w], v),
                Op::Cas(_, _, o, n) => { mem.cas(p, words[w], o, n); }
                Op::Faa(_, _, v) => { mem.faa(p, words[w], v); }
                Op::Swap(_, _, v) => { mem.swap(p, words[w], v); }
            }
            if homes[w] != p {
                expected[p] += 1;
            }
        }
        for (p, want) in expected.iter().enumerate() {
            prop_assert_eq!(mem.rmrs(p), *want);
        }
    }

    /// The tracing wrapper is semantically transparent and its RMR
    /// verdicts sum to the underlying counters.
    #[test]
    fn tracing_wrapper_is_transparent(
        ops in proptest::collection::vec(op_strategy(3, 3), 1..60),
    ) {
        let mut b = MemoryBuilder::new();
        let words: Vec<_> = (0..3).map(|_| b.alloc(0)).collect();
        let mem = b.build_cc(3);
        let traced = sal_memory::TracingMem::new(&mem);
        for op in &ops {
            match *op {
                Op::Read(p, w) => { traced.read(p, words[w]); }
                Op::Write(p, w, v) => traced.write(p, words[w], v),
                Op::Cas(p, w, o, n) => { traced.cas(p, words[w], o, n); }
                Op::Faa(p, w, v) => { traced.faa(p, words[w], v); }
                Op::Swap(p, w, v) => { traced.swap(p, words[w], v); }
            }
        }
        let remote_in_trace = traced.remote_entries().len() as u64;
        prop_assert_eq!(remote_in_trace, mem.total_rmrs());
        prop_assert_eq!(traced.len(), ops.len());
    }
}
