//! Differential test for the facade/core split: driving a lock through
//! its generic [`LockCore`] impl (statically dispatched, the `hwscale`
//! "mono" path) and through the type-erased [`AbortableLock`] facade
//! (`DynLock`, what every `Box<dyn AbortableLock>` registry runs) must
//! produce **identical** simulations — same passage records, same RMR
//! totals, same step count, same event log — on scripted schedules and
//! on seeded random sweeps, for every lock kind in the workspace.
//!
//! This is the contract that makes the split a refactor rather than a
//! fork: the facade is the blanket impl of the core at `M = dyn Mem`,
//! so no lock can behave differently depending on how it is dispatched.

use sal_baselines::{LeeLock, McsLock, ScottLock, TasLock, TicketLock, TournamentLock};
use sal_core::long_lived::{BoundedLongLivedLock, JjLock, SimpleLongLivedLock};
use sal_core::one_shot::{DsmOneShotLock, OneShotLock};
use sal_core::{AbortableLock, LockCore};
use sal_memory::{CcMemory, Mem, MemoryBuilder, Pid, WordId};
use sal_obs::{NoProbe, PassageStats};
use sal_runtime::{
    run_lock, run_lock_core_probed, run_one_shot, ProcPlan, RandomSchedule, RoundRobin,
    SchedulePolicy, Scripted, SteppedMem, WorkloadReport, WorkloadSpec,
};

fn build<L>(make: &impl Fn(&mut MemoryBuilder, usize) -> L, n: usize) -> (L, CcMemory, WordId) {
    let mut b = MemoryBuilder::new();
    let lock = make(&mut b, n);
    let cs_word = b.alloc(0);
    (lock, b.build_cc(n), cs_word)
}

fn assert_reports_equal(label: &str, mono: &WorkloadReport, dynr: &WorkloadReport) {
    assert_eq!(mono.passages, dynr.passages, "{label}: passage records");
    assert_eq!(mono.steps, dynr.steps, "{label}: step counts");
    assert_eq!(
        mono.outcomes, dynr.outcomes,
        "{label}: per-process outcomes"
    );
    assert_eq!(mono.events, dynr.events, "{label}: event logs");
    assert_eq!(
        mono.mutex_check.is_ok(),
        dynr.mutex_check.is_ok(),
        "{label}: mutex verdicts"
    );
    assert_eq!(
        mono.fcfs_check.is_ok(),
        dynr.fcfs_check.is_ok(),
        "{label}: fcfs verdicts"
    );
    assert!(mono.mutex_check.is_ok(), "{label}: mutual exclusion");
}

/// Run the same (layout, workload, schedule) through both dispatch
/// flavours and require identical reports. Fresh lock + memory per
/// flavour: the runs share nothing but the construction recipe.
fn check<L, F, P>(label: &str, make: F, n: usize, spec: &WorkloadSpec, policy: P, one_shot: bool)
where
    L: AbortableLock
        + for<'a> LockCore<SteppedMem<'a, CcMemory>, (PassageStats, NoProbe)>
        + 'static,
    F: Fn(&mut MemoryBuilder, usize) -> L,
    P: Fn() -> Box<dyn SchedulePolicy>,
{
    let (mono_lock, mono_mem, mono_cs) = build(&make, n);
    let mono = run_lock_core_probed(
        &mono_lock,
        &mono_mem,
        mono_cs,
        spec,
        policy(),
        one_shot,
        NoProbe,
    )
    .expect("mono run failed");

    let (dyn_lock, dyn_mem, dyn_cs) = build(&make, n);
    let facade: &dyn AbortableLock = &dyn_lock;
    let dynr = if one_shot {
        run_one_shot(facade, &dyn_mem, dyn_cs, spec, policy())
    } else {
        run_lock(facade, &dyn_mem, dyn_cs, spec, policy())
    }
    .expect("dyn run failed");

    assert_reports_equal(label, &mono, &dynr);
    // The raw memory accounting agrees too, not just the probe's view.
    assert_eq!(
        mono_mem.total_rmrs(),
        dyn_mem.total_rmrs(),
        "{label}: total RMRs"
    );
    for p in 0..n {
        assert_eq!(
            mono_mem.ops(p),
            dyn_mem.ops(p),
            "{label}: ops of process {p}"
        );
    }
}

/// A mixed workload: some processes abort after a deadline, the rest
/// run clean passages.
fn mixed_spec(n: usize, passages: usize) -> WorkloadSpec {
    let mut plans = vec![ProcPlan::normal(passages); n];
    for p in plans.iter_mut().skip(1).step_by(3) {
        *p = ProcPlan::aborter(passages, 6 * n as u64);
    }
    WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 20_000_000,
        lease: sal_runtime::default_lease(),
    }
}

/// A short scripted prefix exercising a specific interleaving before
/// falling back to round-robin: process 0 runs ahead, then the rest
/// are dealt in in reverse order.
fn scripted(n: usize) -> Box<dyn SchedulePolicy> {
    let mut script: Vec<Pid> = vec![0; 12];
    script.extend((0..n).rev());
    script.extend(0..n);
    Box::new(Scripted::new(script, Box::new(RoundRobin::new())))
}

fn seeds() -> impl Iterator<Item = u64> {
    [3, 17, 1984].into_iter()
}

/// Every long-lived kind, on a scripted schedule and a seeded sweep.
macro_rules! long_lived_case {
    ($test:ident, $make:expr, $n:expr, $passages:expr) => {
        #[test]
        fn $test() {
            let n = $n;
            let spec = mixed_spec(n, $passages);
            check(
                concat!(stringify!($test), "/scripted"),
                $make,
                n,
                &spec,
                || scripted(n),
                false,
            );
            for seed in seeds() {
                check(
                    &format!(concat!(stringify!($test), "/seed{}"), seed),
                    $make,
                    n,
                    &spec,
                    || Box::new(RandomSchedule::seeded(seed)),
                    false,
                );
            }
        }
    };
}

long_lived_case!(
    bounded_long_lived_mono_equals_dyn,
    |b, n| BoundedLongLivedLock::layout(b, n, 4),
    6,
    2
);
long_lived_case!(
    simple_long_lived_mono_equals_dyn,
    |b, n| SimpleLongLivedLock::layout(b, n, 4, 6 * 2 + 1),
    6,
    2
);
long_lived_case!(tournament_mono_equals_dyn, TournamentLock::layout, 6, 2);
long_lived_case!(tas_mono_equals_dyn, |b, _n| TasLock::layout(b), 4, 2);
long_lived_case!(
    scott_mono_equals_dyn,
    |b, n| ScottLock::layout(b, n, 6 * 2 + 1),
    6,
    2
);
long_lived_case!(
    lee_mono_equals_dyn,
    |b, n| LeeLock::layout(b, n, 6 * 2 + 1),
    6,
    2
);
long_lived_case!(jj_mono_equals_dyn, JjLock::layout, 6, 2);

/// The non-abortable classics run the no-abort flavour of the same
/// differential check.
#[test]
fn classic_locks_mono_equals_dyn() {
    let n = 5;
    let spec = WorkloadSpec::uniform(n, 3);
    check(
        "mcs/scripted",
        McsLock::layout,
        n,
        &spec,
        || scripted(n),
        false,
    );
    check(
        "ticket/scripted",
        |b, _n| TicketLock::layout(b),
        n,
        &spec,
        || scripted(n),
        false,
    );
    for seed in seeds() {
        check(
            &format!("mcs/seed{seed}"),
            McsLock::layout,
            n,
            &spec,
            || Box::new(RandomSchedule::seeded(seed)),
            false,
        );
        check(
            &format!("ticket/seed{seed}"),
            |b, _n| TicketLock::layout(b),
            n,
            &spec,
            || Box::new(RandomSchedule::seeded(seed)),
            false,
        );
    }
}

/// The one-shot locks (single passage per process, FCFS doorway
/// tickets recorded on both paths).
#[test]
fn one_shot_locks_mono_equals_dyn() {
    let n = 8;
    let spec = mixed_spec(n, 1);
    check(
        "one-shot/scripted",
        |b, n| OneShotLock::layout(b, n, 4),
        n,
        &spec,
        || scripted(n),
        true,
    );
    check(
        "one-shot-dsm/scripted",
        |b, n| DsmOneShotLock::layout(b, n, 4),
        n,
        &spec,
        || scripted(n),
        true,
    );
    for seed in seeds() {
        check(
            &format!("one-shot/seed{seed}"),
            |b, n| OneShotLock::layout(b, n, 4),
            n,
            &spec,
            || Box::new(RandomSchedule::seeded(seed)),
            true,
        );
        check(
            &format!("one-shot-dsm/seed{seed}"),
            |b, n| DsmOneShotLock::layout(b, n, 4),
            n,
            &spec,
            || Box::new(RandomSchedule::seeded(seed)),
            true,
        );
    }
}
