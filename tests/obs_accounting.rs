//! Cross-validation of the observability layer against the memory
//! model: on deterministic scripted schedules (and a seed sweep of
//! random ones), the per-passage RMR counts reported by
//! `sal_obs::PassageStats` must sum to *exactly* the RMR counters kept
//! by `CcMemory` — the ground truth the paper's cost model defines.
//!
//! Covered from both directions:
//! * harness-driven runs (`run_one_shot_probed` / `run_lock_probed`),
//!   where every shared-memory operation of enter, CS and exit flows
//!   through the probe, for the one-shot and the long-lived lock, with
//!   and without aborters;
//! * directly-driven locks (`enter_probed` / `exit_probed` plus a
//!   `ProbedMem`-wrapped critical section), with no simulator at all.

use sal_core::long_lived::BoundedLongLivedLock;
use sal_core::one_shot::OneShotLock;
use sal_memory::{Mem, MemoryBuilder, NeverAbort, WordId};
use sal_obs::{probed, PassageRecord, PassageStats};
use sal_runtime::{
    run_lock_probed, run_one_shot_probed, ProcPlan, RandomSchedule, RoundRobin, Scripted,
    WorkloadReport, WorkloadSpec,
};

/// The invariant under test: every RMR the memory charged appears in
/// exactly one passage record, per process and in total.
fn assert_matches_ground_truth(
    records: &[PassageRecord],
    mem: &sal_memory::CcMemory,
    nprocs: usize,
    label: &str,
) {
    let total: u64 = records.iter().map(|r| r.rmrs).sum();
    assert_eq!(
        total,
        mem.total_rmrs(),
        "{label}: probe total diverges from CcMemory ground truth"
    );
    for p in 0..nprocs {
        let per_pid: u64 = records.iter().filter(|r| r.pid == p).map(|r| r.rmrs).sum();
        assert_eq!(
            per_pid,
            mem.rmrs(p),
            "{label}: probe total for process {p} diverges"
        );
    }
}

/// Both sinks — the harness's internal `PassageStats` and an extra
/// user-attached clone — must agree record-for-record.
fn assert_sinks_agree(report: &WorkloadReport, extra: &PassageStats, label: &str) {
    assert_eq!(
        report.stats.records(),
        extra.records(),
        "{label}: user-attached sink saw a different run"
    );
}

/// A fixed interleaving prefix (then round-robin) so the accounting is
/// checked on a *known* schedule, not just sampled ones.
fn scripted(prefix: Vec<usize>) -> Box<Scripted> {
    Box::new(Scripted::new(prefix, Box::new(RoundRobin::new())))
}

#[test]
fn one_shot_passages_match_cc_ground_truth_on_a_scripted_schedule() {
    let n = 4;
    let mut b = MemoryBuilder::new();
    let lock = OneShotLock::layout(&mut b, n, 2);
    let cs = b.alloc(0);
    let mem = b.build_cc(n);
    let spec = WorkloadSpec::uniform(n, 1);
    // Interleave the doorways pairwise before falling back to RR.
    let extra = PassageStats::new();
    let report = run_one_shot_probed(
        &lock,
        &mem,
        cs,
        &spec,
        scripted(vec![0, 1, 0, 1, 2, 3, 2, 3, 0, 2, 1, 3]),
        extra.clone(),
    )
    .expect("sim failed");
    report.assert_safe();
    assert_eq!(report.stats.total_entered(), n);
    assert_matches_ground_truth(&report.passages, &mem, n, "one-shot scripted");
    assert_sinks_agree(&report, &extra, "one-shot scripted");
}

#[test]
fn one_shot_aborted_attempts_are_charged_to_their_passage() {
    let n = 4;
    let mut b = MemoryBuilder::new();
    let lock = OneShotLock::layout(&mut b, n, 2);
    let cs = b.alloc(0);
    let mem = b.build_cc(n);
    // Two aborters in the middle of the queue; their partial passages
    // must still account for every RMR they incurred.
    let spec = WorkloadSpec {
        plans: vec![
            ProcPlan::normal(1),
            ProcPlan::aborter(1, 12),
            ProcPlan::aborter(1, 16),
            ProcPlan::normal(1),
        ],
        cs_ops: 2,
        max_steps: 1_000_000,
        lease: sal_runtime::default_lease(),
    };
    let extra = PassageStats::new();
    let report = run_one_shot_probed(
        &lock,
        &mem,
        cs,
        &spec,
        scripted(vec![0, 1, 2, 3, 3, 2, 1, 0]),
        extra.clone(),
    )
    .expect("sim failed");
    assert!(report.mutex_check.is_ok());
    assert!(
        report.passages.iter().any(|r| !r.entered),
        "schedule produced no aborts — the test would prove nothing"
    );
    assert_matches_ground_truth(&report.passages, &mem, n, "one-shot aborters");
    assert_sinks_agree(&report, &extra, "one-shot aborters");
}

#[test]
fn long_lived_passages_match_cc_ground_truth_on_scripted_and_random_schedules() {
    for seed in 0..10u64 {
        let n = 4;
        let mut b = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout(&mut b, n, 2);
        let cs = b.alloc(0);
        let mem = b.build_cc(n);
        let spec = WorkloadSpec {
            plans: vec![
                ProcPlan::normal(3),
                ProcPlan::normal(3),
                ProcPlan::aborter(3, 25),
                ProcPlan::normal(3),
            ],
            cs_ops: 2,
            max_steps: 10_000_000,
            lease: sal_runtime::default_lease(),
        };
        let extra = PassageStats::new();
        let policy: Box<dyn sal_runtime::SchedulePolicy> = if seed == 0 {
            scripted(vec![0, 1, 2, 3, 0, 0, 1, 1, 2, 2, 3, 3])
        } else {
            Box::new(RandomSchedule::seeded(seed))
        };
        let report =
            run_lock_probed(&lock, &mem, cs, &spec, policy, extra.clone()).expect("sim failed");
        assert!(report.mutex_check.is_ok(), "seed {seed}");
        // Long-lived passages include instance switches (the §6.2 reset
        // work) — all of it must land in some passage record.
        assert_matches_ground_truth(&report.passages, &mem, n, "long-lived");
        assert_sinks_agree(&report, &extra, "long-lived");
    }
}

#[test]
fn directly_driven_one_shot_matches_ground_truth_without_the_harness() {
    let n = 3;
    let mut b = MemoryBuilder::new();
    let lock = OneShotLock::layout(&mut b, n, 2);
    let cs = b.alloc(0);
    let mem = b.build_cc(n);
    let stats = PassageStats::new();
    // Sequential passages, no simulator: the probed entry points plus a
    // ProbedMem-wrapped CS are the whole accounting path.
    for p in 0..n {
        assert!(lock.enter_probed(&mem, p, &NeverAbort, &stats).entered());
        probed(&mem, &stats).faa(p, cs, 1);
        lock.exit_probed(&mem, p, &stats);
    }
    // Ground truth first: the verification read of `cs` below is itself
    // an (unprobed) RMR and would skew the counters.
    assert_matches_ground_truth(&stats.records(), &mem, n, "direct one-shot");
    assert_eq!(mem.read(0, cs), n as u64);
}

#[test]
fn directly_driven_long_lived_matches_ground_truth_across_instance_switches() {
    let mut b = MemoryBuilder::new();
    let lock = BoundedLongLivedLock::layout(&mut b, 2, 2);
    let cs: WordId = b.alloc(0);
    let mem = b.build_cc(2);
    let stats = PassageStats::new();
    // 8 solo passages: every one switches instances, so the recycling
    // path (descriptor CAS, lazy resets) is all exercised and must be
    // fully attributed.
    for attempt in 0..8 {
        let p = attempt % 2;
        assert!(lock.enter_probed(&mem, p, &NeverAbort, &stats));
        probed(&mem, &stats).faa(p, cs, 1);
        lock.exit_probed(&mem, p, &stats);
    }
    assert_eq!(stats.total_entered(), 8);
    assert_matches_ground_truth(&stats.records(), &mem, 2, "direct long-lived");
    assert_eq!(mem.read(0, cs), 8);
}
