//! Model-checking-style integration tests of the one-shot lock
//! (Figure 1 + Figure 3): thousands of seeded random schedules across
//! configurations, asserting the four problem-statement properties of §2
//! plus FCFS (§5.3).

use sal_core::one_shot::OneShotLock;
use sal_core::tree::Ascent;
use sal_memory::{CcMemory, MemoryBuilder, WordId};
use sal_runtime::{
    run_one_shot, BurstySchedule, ProcPlan, RandomSchedule, SchedulePolicy, WorkloadSpec,
};

fn build(n: usize, b: usize, ascent: Ascent) -> (OneShotLock, WordId, CcMemory) {
    let mut builder = MemoryBuilder::new();
    let lock = OneShotLock::layout_with(&mut builder, n, b, ascent);
    let cs = builder.alloc(0);
    (lock, cs, builder.build_cc(n))
}

fn check(
    n: usize,
    b: usize,
    ascent: Ascent,
    plans: Vec<ProcPlan>,
    policy: Box<dyn SchedulePolicy>,
    tag: &str,
) {
    let (lock, cs, mem) = build(n, b, ascent);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 5_000_000,
        lease: sal_runtime::default_lease(),
    };
    let report = run_one_shot(&lock, &mem, cs, &spec, policy)
        .unwrap_or_else(|e| panic!("{tag}: simulation failed: {e}"));
    // Mutual exclusion (requirement 1).
    assert!(
        report.mutex_check.is_ok(),
        "{tag}: {:?}",
        report.mutex_check
    );
    // FCFS (§5.3) among non-aborting processes.
    assert!(report.fcfs_check.is_ok(), "{tag}: {:?}", report.fcfs_check);
    // Every attempt resolves (bounded abort + starvation freedom under a
    // fair schedule): entered + aborted = attempts.
    let resolved: usize = report.outcomes.iter().map(|o| o.0 + o.1).sum();
    assert_eq!(resolved, n, "{tag}: some attempt never resolved");
    // No lost handoff: the CS counter equals the number of entries times
    // cs_ops.
    let entered = report.total_entered();
    assert_eq!(
        mem_read(&mem, cs),
        (entered * spec.cs_ops) as u64,
        "{tag}: CS effects inconsistent"
    );
}

fn mem_read(mem: &CcMemory, w: WordId) -> u64 {
    use sal_memory::Mem;
    mem.read(0, w)
}

#[test]
fn no_aborts_all_enter_many_seeds() {
    for seed in 0..60 {
        for &(n, b) in &[(3usize, 2usize), (5, 2), (8, 4), (13, 3)] {
            check(
                n,
                b,
                Ascent::Adaptive,
                vec![ProcPlan::normal(1); n],
                Box::new(RandomSchedule::seeded(seed)),
                &format!("clean n={n} b={b} seed={seed}"),
            );
        }
    }
}

#[test]
fn mixed_aborters_many_seeds() {
    for seed in 0..60 {
        for &(n, b) in &[(4usize, 2usize), (6, 2), (9, 4)] {
            let mut plans = Vec::new();
            for p in 0..n {
                if p % 3 == 1 {
                    plans.push(ProcPlan::aborter(1, (seed % 7) * 10 + 5));
                } else {
                    plans.push(ProcPlan::normal(1));
                }
            }
            check(
                n,
                b,
                Ascent::Adaptive,
                plans,
                Box::new(RandomSchedule::seeded(seed)),
                &format!("mixed n={n} b={b} seed={seed}"),
            );
        }
    }
}

#[test]
fn plain_ascent_is_equally_safe() {
    for seed in 0..40 {
        let n = 7;
        let mut plans = vec![ProcPlan::normal(1); n];
        plans[2] = ProcPlan::aborter(1, 15);
        plans[5] = ProcPlan::aborter(1, 25);
        check(
            n,
            2,
            Ascent::Plain,
            plans,
            Box::new(RandomSchedule::seeded(seed)),
            &format!("plain seed={seed}"),
        );
    }
}

#[test]
fn bursty_schedules_expose_handoff_races() {
    // Long scheduling runs of a single process maximize the chance that
    // an aborter completes Remove while an exiter is mid-FindNext — the
    // crossed-paths (⊤) responsibility protocol must never lose the
    // lock.
    for seed in 0..60 {
        let n = 6;
        let plans = vec![
            ProcPlan::normal(1),
            ProcPlan::aborter(1, 5),
            ProcPlan::aborter(1, 10),
            ProcPlan::aborter(1, 15),
            ProcPlan::aborter(1, 0),
            ProcPlan::normal(1),
        ];
        check(
            n,
            2,
            Ascent::Adaptive,
            plans,
            Box::new(BurstySchedule::seeded(seed, 0.85)),
            &format!("bursty seed={seed}"),
        );
    }
}

#[test]
fn everyone_aborts_immediately_lock_survives_for_first_holder() {
    // Process 0 holds the lock from the start (go[0] = 1). Everyone else
    // aborts with the signal pre-fired; the exit must cleanly find ⊥.
    for seed in 0..30 {
        let n = 8;
        let mut plans = vec![ProcPlan::normal(1)];
        plans.extend(vec![ProcPlan::aborter(1, 0); n - 1]);
        check(
            n,
            2,
            Ascent::Adaptive,
            plans,
            Box::new(RandomSchedule::seeded(seed)),
            &format!("all-abort seed={seed}"),
        );
    }
}

#[test]
fn wide_branching_factors_and_odd_sizes() {
    for seed in 0..25 {
        for &(n, b) in &[(11usize, 5usize), (17, 16), (6, 64), (2, 2)] {
            let mut plans = vec![ProcPlan::normal(1); n];
            if n > 2 {
                plans[1] = ProcPlan::aborter(1, 20);
            }
            check(
                n,
                b,
                Ascent::Adaptive,
                plans,
                Box::new(RandomSchedule::seeded(seed)),
                &format!("odd n={n} b={b} seed={seed}"),
            );
        }
    }
}

#[test]
fn dsm_variant_model_check() {
    use sal_core::one_shot::DsmOneShotLock;
    for seed in 0..50 {
        let n = 6;
        let mut builder = MemoryBuilder::new();
        let lock = DsmOneShotLock::layout(&mut builder, n, 4);
        let cs = builder.alloc(0);
        let mem = builder.build_dsm(n);
        let spec = WorkloadSpec {
            plans: vec![
                ProcPlan::normal(1),
                ProcPlan::aborter(1, 10),
                ProcPlan::normal(1),
                ProcPlan::aborter(1, 30),
                ProcPlan::normal(1),
                ProcPlan::normal(1),
            ],
            cs_ops: 2,
            max_steps: 5_000_000,
            lease: sal_runtime::default_lease(),
        };
        let report = run_one_shot(
            &lock,
            &mem,
            cs,
            &spec,
            Box::new(RandomSchedule::seeded(seed)),
        )
        .unwrap_or_else(|e| panic!("dsm seed={seed}: {e}"));
        assert!(report.mutex_check.is_ok(), "dsm seed={seed}");
        assert!(report.fcfs_check.is_ok(), "dsm seed={seed}");
        let resolved: usize = report.outcomes.iter().map(|o| o.0 + o.1).sum();
        assert_eq!(resolved, n, "dsm seed={seed}");
    }
}

#[test]
fn bounded_abort_under_any_schedule() {
    // Bounded abort (requirement 4): once the signal fires, the enter
    // call returns within a finite number of the process's own steps —
    // witnessed by termination even when the CS holder never exits
    // (process 0 never releases within the horizon because it is
    // scheduled last).
    use sal_memory::Mem;
    for seed in 0..20 {
        let n = 5;
        let (lock, _cs, mem) = build(n, 2, Ascent::Adaptive);
        // Sequentially: p0 acquires. Then every other process runs alone
        // with a pre-fired signal: its enter must return without p0 ever
        // moving.
        let sig = sal_memory::AbortFlag::new();
        sig.set();
        assert!(lock.enter(&mem, 0, &sal_memory::NeverAbort).entered());
        for p in 1..n {
            let before = mem.ops(p);
            let outcome = lock.enter(&mem, p, &sig);
            assert!(!outcome.entered(), "seed={seed} p={p}");
            // Finite and small: the abort path is wait-free.
            assert!(mem.ops(p) - before < 200, "abort not bounded");
        }
        lock.exit(&mem, 0);
        let _ = seed;
    }
}
