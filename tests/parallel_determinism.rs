//! Determinism across worker counts (ISSUE PR-3 satellite): the whole
//! observable output of a parallel experiment pass — result points,
//! rendered tables, merged JSONL event streams, exploration verdicts —
//! must be byte-identical at `--jobs 1` and `--jobs 8`.

use sal_bench::{par_grid, worst_case_sweep_probed, LockKind, Table};
use sal_memory::{Mem, MemoryBuilder};
use sal_obs::{EventLog, ToJson};
use sal_runtime::{explore, simulate, ExploreOptions, SimOptions};

/// Render everything a table1-style probed sweep produces into one
/// string: the aligned table, the points JSON, and the merged event
/// JSONL (per-cell unbounded logs absorbed in cell order).
fn sweep_fingerprint(jobs: usize, seeds: &[u64]) -> String {
    let kinds = [LockKind::OneShot { b: 4 }, LockKind::Scott];
    let ns = [8usize, 16];
    let cells: Vec<(LockKind, usize, u64)> = kinds
        .iter()
        .flat_map(|&kind| {
            ns.iter()
                .flat_map(move |&n| seeds.iter().map(move |&seed| (kind, n, seed)))
        })
        .collect();
    let results = par_grid(jobs, &cells, |&(kind, n, seed)| {
        let cell_log = EventLog::unbounded();
        let p = worst_case_sweep_probed(kind, n, seed, cell_log.clone()).expect("sim failed");
        assert!(p.mutex_ok);
        (p, cell_log)
    });
    let log = EventLog::unbounded();
    let mut points = Vec::new();
    let mut table = Table::new("determinism probe", &["lock", "N", "seed", "max RMRs"]);
    for ((kind, n, seed), (p, cell_log)) in cells.iter().zip(results) {
        log.absorb(&cell_log);
        table.row(vec![
            kind.label(),
            n.to_string(),
            seed.to_string(),
            p.max_entered_rmrs.to_string(),
        ]);
        points.push(p);
    }
    format!(
        "{}\n{}\n{}",
        table.render(),
        points.to_json().render(),
        log.to_jsonl()
    )
}

/// Table-1-style probed sweep: identical table + JSON + JSONL at 1 and
/// 8 workers, across three seeds.
#[test]
fn probed_sweep_is_byte_identical_across_worker_counts() {
    let seeds = [1u64, 2, 3];
    let serial = sweep_fingerprint(1, &seeds);
    let parallel = sweep_fingerprint(8, &seeds);
    assert!(
        serial == parallel,
        "parallel sweep output diverged from serial"
    );
    // The fingerprint actually contains the event stream (not just
    // empty logs that would trivially compare equal).
    assert!(serial.contains("\"kind\""), "JSONL section missing events");
}

/// The explorer's racy-lock workload from its own test-suite: a
/// read-then-write "lock" whose mutual-exclusion violation needs one
/// deviation to surface.
fn broken_lock(policy: sal_runtime::ForcedSchedule) -> Result<(), String> {
    let mut b = MemoryBuilder::new();
    let flag = b.alloc(0);
    let in_cs = b.alloc(0);
    let max_seen = b.alloc(0);
    let mem = b.build_cc(2);
    simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
        loop {
            if ctx.mem.read(ctx.pid, flag) == 0 {
                ctx.mem.write(ctx.pid, flag, 1);
                break;
            }
        }
        let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
        let seen = ctx.mem.read(ctx.pid, max_seen);
        if inside > seen {
            ctx.mem.write(ctx.pid, max_seen, inside);
        }
        ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
        ctx.mem.write(ctx.pid, flag, 0);
    })
    .map_err(|e| e.to_string())?;
    if mem.read(0, max_seen) > 1 {
        Err("two processes in the CS".into())
    } else {
        Ok(())
    }
}

/// A correct CAS lock over the same shape: no violation at any budget.
fn cas_lock(policy: sal_runtime::ForcedSchedule) -> Result<(), String> {
    let mut b = MemoryBuilder::new();
    let flag = b.alloc(0);
    let in_cs = b.alloc(0);
    let max_seen = b.alloc(0);
    let mem = b.build_cc(2);
    simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
        while !ctx.mem.cas(ctx.pid, flag, 0, 1) {}
        let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
        let seen = ctx.mem.read(ctx.pid, max_seen);
        if inside > seen {
            ctx.mem.write(ctx.pid, max_seen, inside);
        }
        ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
        ctx.mem.write(ctx.pid, flag, 0);
    })
    .map_err(|e| e.to_string())?;
    if mem.read(0, max_seen) > 1 {
        Err("two processes in the CS".into())
    } else {
        Ok(())
    }
}

fn explore_at(
    jobs: usize,
    base: &ExploreOptions,
    run: impl Fn(sal_runtime::ForcedSchedule) -> Result<(), String> + Sync,
) -> sal_runtime::ExplorationResult {
    explore(
        &ExploreOptions {
            jobs,
            collect_schedules: true,
            ..base.clone()
        },
        run,
    )
}

/// Exploration is jobs-invariant in every observable: run count,
/// truncation, the violation witness (lexicographically least failing
/// prefix), and the full visited-schedule list in execution order.
#[test]
fn exploration_is_jobs_invariant() {
    let configs = [
        // Finds a violation: the witness must be the same schedule.
        (
            ExploreOptions {
                max_deviations: 1,
                max_runs: 10_000,
                max_branch_depth: 100,
                ..ExploreOptions::default()
            },
            true,
        ),
        // Clean pass over a correct lock.
        (
            ExploreOptions {
                max_deviations: 2,
                max_runs: 2_000,
                max_branch_depth: 40,
                ..ExploreOptions::default()
            },
            false,
        ),
        // Budget-truncated pass.
        (
            ExploreOptions {
                max_deviations: 2,
                max_runs: 7,
                max_branch_depth: 40,
                ..ExploreOptions::default()
            },
            false,
        ),
    ];
    for (base, use_broken) in &configs {
        let reference = if *use_broken {
            explore_at(1, base, broken_lock)
        } else {
            explore_at(1, base, cas_lock)
        };
        for jobs in [2usize, 8] {
            let parallel = if *use_broken {
                explore_at(jobs, base, broken_lock)
            } else {
                explore_at(jobs, base, cas_lock)
            };
            assert_eq!(parallel.runs, reference.runs, "jobs={jobs} {base:?}");
            assert_eq!(
                parallel.truncated, reference.truncated,
                "jobs={jobs} {base:?}"
            );
            assert_eq!(
                parallel.violation, reference.violation,
                "jobs={jobs} {base:?}"
            );
            assert_eq!(parallel.visited, reference.visited, "jobs={jobs} {base:?}");
        }
        if *use_broken {
            assert!(
                reference.violation.is_some(),
                "the broken lock's race went unfound"
            );
        }
    }
}
