//! Properties of the work-stealing pool itself (ISSUE PR-3 satellite):
//! stealing under skewed job sizes, panic hygiene, dynamic spawning and
//! nested fan-out. Everything here must hold at any worker count,
//! including on a single-CPU box where workers time-slice.

use sal_runtime::pool::{par_map_indexed, resolve_jobs, run_jobs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Heavily skewed job sizes: one job is ~1000x the others. The gather
/// must still come back in index order with every cell present.
#[test]
fn skewed_job_sizes_gather_in_order() {
    let work = |i: usize| -> u64 {
        // Cell 0 is the giant; the rest are tiny.
        let iters = if i == 0 { 200_000 } else { 200 };
        let mut acc = i as u64;
        for k in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
        }
        acc
    };
    let serial: Vec<u64> = (0..64).map(work).collect();
    for jobs in [1, 2, 4, 8] {
        let par = par_map_indexed(jobs, 64, work);
        assert_eq!(par, serial, "jobs={jobs}");
    }
}

/// A panicking job propagates to the caller *after* the pool has
/// drained — sibling jobs still ran — and the pool machinery is
/// reusable afterwards (no poisoned/wedged state).
#[test]
fn panic_propagates_without_wedging_the_pool() {
    static RAN: AtomicUsize = AtomicUsize::new(0);
    RAN.store(0, Ordering::SeqCst);
    let result = std::panic::catch_unwind(|| {
        run_jobs(4, (0..32).collect::<Vec<usize>>(), |i, _w| {
            RAN.fetch_add(1, Ordering::SeqCst);
            assert!(i != 7, "job 7 detonates");
        });
    });
    assert!(result.is_err(), "the job panic must reach the caller");
    // All 32 jobs were taken off the queues despite the panic.
    assert_eq!(RAN.load(Ordering::SeqCst), 32);
    // And a fresh run on the same API works fine.
    let again = par_map_indexed(4, 16, |i| i * 2);
    assert_eq!(again, (0..16).map(|i| i * 2).collect::<Vec<_>>());
}

/// Jobs may spawn further jobs mid-run (the exploration engine's wave
/// expansion does); everything spawned before the last job finishes is
/// still executed.
#[test]
fn dynamically_spawned_jobs_all_run() {
    let hits = Mutex::new(Vec::new());
    run_jobs(4, vec![0usize], |depth, w| {
        hits.lock().unwrap().push(depth);
        if depth < 5 {
            // Fan out two children per level: 2^6 - 1 = 63 jobs total.
            w.spawn(depth + 1);
            w.spawn(depth + 1);
        }
    });
    let mut got = hits.into_inner().unwrap();
    got.sort_unstable();
    let mut want = Vec::new();
    for depth in 0..=5usize {
        want.extend(std::iter::repeat_n(depth, 1 << depth));
    }
    assert_eq!(got, want);
}

/// Nested parallel maps (a pool inside a pool job) complete rather
/// than deadlocking — each nested call runs on its own scoped workers.
#[test]
fn nested_par_map_completes() {
    let outer = par_map_indexed(2, 4, |i| {
        let inner = par_map_indexed(2, 3, move |j| i * 10 + j);
        inner.iter().sum::<usize>()
    });
    assert_eq!(outer, vec![3, 33, 63, 93]);
}

/// Worker indices handed to jobs are always within `0..jobs`.
#[test]
fn worker_indices_are_bounded() {
    let seen = Mutex::new(Vec::new());
    run_jobs(3, (0..40).collect::<Vec<usize>>(), |_i, w| {
        seen.lock().unwrap().push(w.index());
    });
    let seen = seen.into_inner().unwrap();
    assert_eq!(seen.len(), 40);
    assert!(seen.iter().all(|&ix| ix < 3));
}

/// `resolve_jobs(0)` is auto (>= 1); positive counts are taken as-is.
#[test]
fn zero_jobs_resolves_to_auto() {
    assert!(resolve_jobs(0) >= 1);
    assert_eq!(resolve_jobs(5), 5);
}

/// Empty input returns an empty gather without touching any threads.
#[test]
fn empty_input_is_a_no_op() {
    let out: Vec<usize> = par_map_indexed(8, 0, |i| i);
    assert!(out.is_empty());
    run_jobs(8, Vec::<usize>::new(), |_i, _w| unreachable!());
}
