//! Real-thread stress tests: the same algorithm code that the simulator
//! model-checks, running free on OS threads over bare atomics
//! (`RawMemory`) with genuine parallelism, preemption and timing noise.
//! Complements the deterministic suites: different failure surface
//! (memory-ordering bugs, real races), same invariants.

use sal_baselines::{LeeLock, McsLock, ScottLock, TournamentLock};
use sal_core::long_lived::BoundedLongLivedLock;
use sal_core::one_shot::OneShotLock;
use sal_core::{AbortableLock, DynLock, Immediate, LockCore};
use sal_memory::{AbortFlag, EpochMode, Mem, MemoryBuilder, NeverAbort};
use sal_obs::NoProbe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Run `threads` real threads × `passages` each over `lock`, counting
/// CS entries with a plain (non-simulated) counter protected by the
/// lock itself; returns (entered, aborted). Generic over the memory
/// flavour AND the dispatch flavour: a concrete `L` runs the
/// monomorphized `LockCore` path (no vtables anywhere on `RawMemory`),
/// while [`DynLock`] runs the erased facade path — same driver, same
/// invariant check.
fn hammer_core<L, M>(
    lock: &L,
    mem: &M,
    threads: usize,
    passages: usize,
    abort_every: Option<usize>,
) -> (u64, u64)
where
    L: LockCore<M, NoProbe> + Sync,
    M: Mem + Send + Sync,
{
    // The protected counter lives OUTSIDE the lock's memory: a
    // non-atomic u64 cell we may only touch inside the CS. Any mutual
    // exclusion failure is UB caught as a lost update.
    struct Cell(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for Cell {}
    let counter = Cell(std::cell::UnsafeCell::new(0));
    let entered = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    // All threads start hammering together, or fast runs degenerate into
    // a sequence of solo passages with no contention at all.
    let barrier = std::sync::Barrier::new(threads);

    std::thread::scope(|s| {
        let counter = &counter;
        let entered = &entered;
        let aborted = &aborted;
        let barrier = &barrier;
        for p in 0..threads {
            s.spawn(move || {
                barrier.wait();
                for i in 0..passages {
                    let flag = AbortFlag::new();
                    let want_abort = abort_every.map(|k| (i + p) % k == 0).unwrap_or(false);
                    let ok = if want_abort {
                        // Fire the signal after a tiny real-time delay
                        // from a helper knowing nothing of the lock.
                        flag.set();
                        lock.enter_core(mem, p, &flag, &NoProbe).entered()
                    } else {
                        lock.enter_core(mem, p, &NeverAbort, &NoProbe).entered()
                    };
                    if ok {
                        // Critical section: read-modify-write on the
                        // unprotected cell.
                        unsafe {
                            let c = counter.0.get();
                            let v = c.read();
                            std::hint::black_box(v);
                            c.write(v + 1);
                        }
                        entered.fetch_add(1, Ordering::Relaxed);
                        lock.exit_core(mem, p, &NoProbe);
                    } else {
                        aborted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let total = unsafe { *counter.0.get() };
    assert_eq!(
        total,
        entered.load(Ordering::Relaxed),
        "lost update: mutual exclusion violated on real threads"
    );
    (
        entered.load(Ordering::Relaxed),
        aborted.load(Ordering::Relaxed),
    )
}

/// [`hammer_core`] through the type-erased facade: what every
/// `Box<dyn AbortableLock>` user runs.
fn hammer<M: Mem + Send + Sync>(
    lock: Arc<dyn AbortableLock>,
    mem: Arc<M>,
    threads: usize,
    passages: usize,
    abort_every: Option<usize>,
) -> (u64, u64) {
    hammer_core(&DynLock(&*lock), &*mem, threads, passages, abort_every)
}

#[test]
fn bounded_long_lived_on_real_threads() {
    let threads = 8;
    let mut b = MemoryBuilder::new();
    let lock = BoundedLongLivedLock::layout(&mut b, threads, 8);
    let mem = Arc::new(b.build_raw(threads));
    let (entered, aborted) = hammer(Arc::new(lock), mem, threads, 300, None);
    assert_eq!(entered, 8 * 300);
    assert_eq!(aborted, 0);
}

#[test]
fn bounded_long_lived_with_aborts_on_real_threads() {
    // Mixed workload: on a single-core box contention may never
    // materialize (timeslices are far longer than a passage), so only
    // conservation is asserted here; the forced-contention abort test
    // below covers the abort path deterministically.
    let threads = 8;
    let mut b = MemoryBuilder::new();
    let lock = BoundedLongLivedLock::layout(&mut b, threads, 16);
    let mem = Arc::new(b.build_raw(threads));
    let (entered, aborted) = hammer(Arc::new(lock), mem, threads, 200, Some(3));
    assert_eq!(entered + aborted, 8 * 200);
    assert!(entered > 0);
}

#[test]
fn bounded_long_lived_monomorphized_on_real_threads() {
    // The same traffic as the dyn test above, but through the generic
    // `LockCore` path on a concrete lock type: zero virtual calls on
    // the whole passage. The lost-update invariant inside the driver
    // must hold on this flavour too.
    let threads = 8;
    let mut b = MemoryBuilder::new();
    let lock = BoundedLongLivedLock::layout(&mut b, threads, 8);
    let mem = b.build_raw(threads);
    let (entered, aborted) = hammer_core(&lock, &mem, threads, 300, None);
    assert_eq!(entered, 8 * 300);
    assert_eq!(aborted, 0);
}

#[test]
fn mono_and_dyn_paths_both_preserve_the_cs_invariant() {
    // Identical layouts, identical workloads (with aborts), one run per
    // dispatch flavour; both must conserve passages — the lost-update
    // assertion fires inside `hammer_core` for each.
    let threads = 6;
    let mut b = MemoryBuilder::new();
    let mono_lock = BoundedLongLivedLock::layout(&mut b, threads, 8);
    let mono_mem = b.build_raw(threads);
    let (m_entered, m_aborted) = hammer_core(&mono_lock, &mono_mem, threads, 200, Some(3));
    assert_eq!(m_entered + m_aborted, 6 * 200);
    assert!(m_entered > 0);

    let mut b = MemoryBuilder::new();
    let dyn_lock: Arc<dyn AbortableLock> =
        Arc::new(BoundedLongLivedLock::layout(&mut b, threads, 8));
    let dyn_mem = Arc::new(b.build_raw(threads));
    let (d_entered, d_aborted) = hammer(dyn_lock, dyn_mem, threads, 200, Some(3));
    assert_eq!(d_entered + d_aborted, 6 * 200);
    assert!(d_entered > 0);
}

#[test]
fn aborts_fire_while_the_lock_is_demonstrably_held() {
    // Deterministic contention: the main thread holds the lock while
    // every other thread attempts with a pre-fired signal — all must
    // abort in bounded time; afterwards everyone acquires cleanly.
    let threads = 8;
    let mut b = MemoryBuilder::new();
    let lock = Arc::new(BoundedLongLivedLock::layout(&mut b, threads, 16));
    let mem = Arc::new(b.build_raw(threads));
    assert!(lock.enter(&*mem, 0, &NeverAbort));
    let aborted: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (1..threads)
            .map(|p| {
                let lock = Arc::clone(&lock);
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let mut aborts = 0u64;
                    for _ in 0..50 {
                        if !lock.enter(&*mem, p, &Immediate) {
                            aborts += 1;
                        } else {
                            lock.exit(&*mem, p); // impossible while held, but keep the protocol legal
                        }
                    }
                    aborts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(aborted, 7 * 50, "every attempt against a held lock aborts");
    lock.exit(&*mem, 0);
    for p in 1..threads {
        assert!(lock.enter(&*mem, p, &NeverAbort));
        lock.exit(&*mem, p);
    }
}

#[test]
fn one_shot_on_real_threads() {
    let threads = 16;
    let mut b = MemoryBuilder::new();
    let lock = OneShotLock::layout(&mut b, threads, 8);
    let mem = Arc::new(b.build_raw(threads));
    let (entered, aborted) = hammer(Arc::new(lock), mem, threads, 1, None);
    assert_eq!(entered, 16);
    assert_eq!(aborted, 0);
}

#[test]
fn baselines_on_real_threads() {
    let threads = 6;
    // MCS
    let mut b = MemoryBuilder::new();
    let mcs = McsLock::layout(&mut b, threads);
    let mem = Arc::new(b.build_raw(threads));
    let (entered, _) = hammer(Arc::new(mcs), mem, threads, 400, None);
    assert_eq!(entered, 6 * 400);
    // Tournament with aborts
    let mut b = MemoryBuilder::new();
    let t = TournamentLock::layout(&mut b, threads);
    let mem = Arc::new(b.build_raw(threads));
    let (entered, aborted) = hammer(Arc::new(t), mem, threads, 200, Some(4));
    assert_eq!(entered + aborted, 6 * 200);
    // Scott with aborts
    let mut b = MemoryBuilder::new();
    let s = ScottLock::layout(&mut b, threads, 6 * 200 + 1);
    let mem = Arc::new(b.build_raw(threads));
    let (entered, aborted) = hammer(Arc::new(s), mem, threads, 200, Some(4));
    assert_eq!(entered + aborted, 6 * 200);
    // Lee with aborts
    let mut b = MemoryBuilder::new();
    let l = LeeLock::layout(&mut b, threads, 6 * 200 + 1);
    let mem = Arc::new(b.build_raw(threads));
    let (entered, aborted) = hammer(Arc::new(l), mem, threads, 200, Some(4));
    assert_eq!(entered + aborted, 6 * 200);
}

/// Free-running threads hammer the sharded `CcMemory` directly (no lock,
/// no simulator): accounting must stay *exact* under genuine parallelism.
/// Each thread issues a known mix of operations, so its own counters have
/// closed-form expectations independent of the interleaving — per-process
/// ops equal issued ops, each write-type op is exactly one RMR, and the
/// F&A word conserves its total.
fn cc_direct_stress(mode: EpochMode, threads: usize, per_thread: u64) {
    let mut b = MemoryBuilder::new();
    let counter = b.alloc(0);
    let scratch = b.alloc_array(threads, 0);
    let mem = Arc::new(b.build_cc_with(threads, mode));
    let monitor_stop = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // A monitor thread samples the global total concurrently: it must
        // be monotone (counters only ever advance).
        {
            let mem = Arc::clone(&mem);
            let stop = Arc::clone(&monitor_stop);
            s.spawn(move || {
                let mut last = 0;
                while stop.load(Ordering::Acquire) == 0 {
                    let now = mem.total_rmrs();
                    assert!(now >= last, "total_rmrs went backwards: {last} -> {now}");
                    last = now;
                    std::hint::spin_loop();
                }
            });
        }
        let handles: Vec<_> = (0..threads)
            .map(|p| {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let mine = scratch.at(p);
                    for i in 0..per_thread {
                        mem.faa(p, counter, 1); // contended word
                        mem.write(p, mine, i); // mostly-private word
                        mem.read(p, mine);
                        if i % 8 == 0 {
                            mem.read(p, counter);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        monitor_stop.store(1, Ordering::Release);
    });

    let reads_of_counter = per_thread.div_ceil(8);
    let mut issued_total = 0;
    for p in 0..threads {
        let issued = per_thread * 3 + reads_of_counter;
        issued_total += issued;
        assert_eq!(mem.ops(p), issued, "process {p}: ops must equal issued ops");
        // Every faa and write is exactly 1 RMR; each read is 0 or 1.
        let write_type = per_thread * 2;
        assert!(
            mem.rmrs(p) >= write_type,
            "process {p}: write-type RMRs missing"
        );
        assert!(mem.rmrs(p) <= issued, "process {p}: more RMRs than ops");
    }
    let total_ops: u64 = (0..threads).map(|p| mem.ops(p)).sum();
    assert_eq!(total_ops, issued_total, "ops conservation across processes");
    // The contended word saw every increment exactly once.
    assert_eq!(mem.read(0, counter), threads as u64 * per_thread);
}

#[test]
fn cc_memory_direct_stress_dense_epochs() {
    cc_direct_stress(EpochMode::Dense, 8, 20_000);
}

#[test]
fn cc_memory_direct_stress_sparse_epochs() {
    cc_direct_stress(EpochMode::Sparse, 8, 5_000);
}

#[test]
fn bounded_long_lived_on_instrumented_cc_memory_real_threads() {
    // The same lock traffic the RawMemory tests run, but over the
    // sharded *instrumented* memory on free-running threads: mutual
    // exclusion must hold and the accounting must stay consistent.
    let threads = 8;
    let mut b = MemoryBuilder::new();
    let lock = BoundedLongLivedLock::layout(&mut b, threads, 8);
    let mem = Arc::new(b.build_cc(threads));
    let (entered, aborted) = hammer(Arc::new(lock), Arc::clone(&mem), threads, 100, None);
    assert_eq!(entered, 8 * 100);
    assert_eq!(aborted, 0);
    // Sanity on the accounting: every process did shared-memory work and
    // was charged for it; totals are sums of the per-process counters.
    let mut rmr_sum = 0;
    for p in 0..threads {
        assert!(mem.ops(p) > 0, "process {p} issued no ops?");
        assert!(mem.rmrs(p) > 0, "process {p} paid no RMRs?");
        assert!(mem.rmrs(p) <= mem.ops(p));
        rmr_sum += mem.rmrs(p);
    }
    assert_eq!(rmr_sum, mem.total_rmrs());
}

#[test]
fn timed_aborts_fire_under_real_contention() {
    // One hog holds the lock while others use real deadlines.
    let threads = 4;
    let mut b = MemoryBuilder::new();
    let lock = Arc::new(BoundedLongLivedLock::layout(&mut b, threads, 8));
    let mem = Arc::new(b.build_raw(threads));
    assert!(lock.enter(&*mem, 0, &NeverAbort));
    let timed_out: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..threads)
            .map(|p| {
                let lock = Arc::clone(&lock);
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    let deadline =
                        sal_memory::Deadline::after(std::time::Duration::from_millis(10));
                    !lock.enter(&*mem, p, &deadline)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(timed_out.iter().all(|&t| t), "all waiters should time out");
    lock.exit(&*mem, 0);
    // Lock still healthy afterwards.
    assert!(lock.enter(&*mem, 1, &NeverAbort));
    lock.exit(&*mem, 1);
}
