//! Executable complexity bounds: the RMR claims of Theorem 2, Claim 20,
//! Claim 21 and Claim 28, checked as inequalities on measured counts.
//! These are the paper's *theorems* as tests — generous constants, but
//! the asymptotic shape is pinned: costs must track `log_B A` (not `N`),
//! no-abort passages must be flat, and the long-lived wrapper must add
//! only a constant.

use sal_bench::{adaptive_sweep, no_abort_sweep, worst_case_sweep, LockKind};
use sal_core::tree::{FindNextResult, Tree};
use sal_memory::{Mem, MemoryBuilder, RmrProbe};

fn log_b(b: usize, x: usize) -> u64 {
    let mut h = 1u64;
    let mut cap = b;
    while cap < x {
        cap *= b;
        h += 1;
    }
    h
}

/// Abstract claim: "if no process aborts during a passage, its RMR cost
/// is O(1)" — flat in N.
#[test]
fn no_abort_passages_are_constant_in_n() {
    let mut costs = Vec::new();
    for &n in &[8usize, 32, 128] {
        let p = no_abort_sweep(LockKind::OneShot { b: 8 }, n, 1, 5).unwrap();
        assert!(p.mutex_ok);
        costs.push(p.max_entered_rmrs);
    }
    let max = *costs.iter().max().unwrap();
    assert!(max <= 12, "no-abort passage not O(1): {costs:?}");
    // And flat: N=128 costs no more than N=8 plus slack.
    assert!(
        costs[2] <= costs[0] + 3,
        "no-abort cost grows with N: {costs:?}"
    );
}

/// Theorem 2: a complete passage costs O(log_B A_i).
#[test]
fn complete_passage_tracks_log_b_of_aborters() {
    let n = 128;
    let b = 4;
    for &a in &[0usize, 4, 16, 64, 126] {
        let p = adaptive_sweep(LockKind::OneShot { b }, n, a, 9).unwrap();
        assert!(p.mutex_ok);
        let bound = 8 * log_b(b, a.max(2)) + 16;
        assert!(
            p.max_entered_rmrs <= bound,
            "A={a}: {} RMRs exceeds c·log_{b}(A) = {bound}",
            p.max_entered_rmrs
        );
    }
}

/// Theorem 2: an aborted attempt costs O(log_B A_t).
#[test]
fn aborted_attempt_tracks_log_b_of_total_aborters() {
    let n = 128;
    let b = 4;
    for &a in &[1usize, 8, 32, 126] {
        let p = adaptive_sweep(LockKind::OneShot { b }, n, a, 13).unwrap();
        let bound = 8 * log_b(b, a.max(2)) + 16;
        assert!(
            p.max_aborted_rmrs <= bound,
            "A={a}: aborted attempt cost {} exceeds {bound}",
            p.max_aborted_rmrs
        );
    }
}

/// The worst case is O(log_B N) — and larger B genuinely flattens it
/// (the time/space trade-off of §1).
#[test]
fn worst_case_flattens_with_branching_factor() {
    let n = 128;
    let narrow = worst_case_sweep(LockKind::OneShot { b: 2 }, n, 3).unwrap();
    let wide = worst_case_sweep(LockKind::OneShot { b: 64 }, n, 3).unwrap();
    assert!(narrow.mutex_ok && wide.mutex_ok);
    assert!(
        wide.max_entered_rmrs < narrow.max_entered_rmrs,
        "B=64 ({}) should beat B=2 ({})",
        wide.max_entered_rmrs,
        narrow.max_entered_rmrs
    );
    assert!(
        wide.max_entered_rmrs <= 14,
        "B=64 at N=128 is the O(1) regime: {}",
        wide.max_entered_rmrs
    );
}

/// Claim 28: the long-lived wrapper preserves the one-shot cost up to a
/// constant — including the lazy-reset overhead of recycled instances.
#[test]
fn long_lived_adds_only_a_constant() {
    // "Constant" means independent of N, not small: the switching
    // passage pays for lazy resets, the descriptor CAS, and the spin-pool
    // scan step, but none of that may grow with the process count.
    let small = no_abort_sweep(LockKind::LongLived { b: 8 }, 8, 3, 3).unwrap();
    let large = no_abort_sweep(LockKind::LongLived { b: 8 }, 64, 3, 3).unwrap();
    assert!(small.mutex_ok && large.mutex_ok);
    assert!(
        large.max_entered_rmrs <= small.max_entered_rmrs + 10,
        "wrapper overhead grows with N: {} (N=8) vs {} (N=64)",
        small.max_entered_rmrs,
        large.max_entered_rmrs
    );
    // And it stays within a fixed multiple of the bare one-shot passage.
    let one_shot = no_abort_sweep(LockKind::OneShot { b: 8 }, 16, 1, 3).unwrap();
    assert!(
        large.max_entered_rmrs <= one_shot.max_entered_rmrs * 6 + 10,
        "wrapper blow-up: {} vs one-shot {}",
        large.max_entered_rmrs,
        one_shot.max_entered_rmrs
    );
}

/// Claim 21 at the data-structure level: AdaptiveFindNext pays per
/// *aborter*, the plain ascent pays per *tree height*.
#[test]
fn adaptive_ascent_beats_plain_at_subtree_boundaries() {
    let n = 1 << 14;
    let mut builder = MemoryBuilder::new();
    let tree = Tree::layout(&mut builder, n, 2);
    let mem = builder.build_cc(2);
    let p = (n / 2 - 1) as u64;
    let probe = RmrProbe::start(&mem, 0);
    assert_eq!(tree.find_next(&mem, 0, p), FindNextResult::Next(p + 1));
    let plain = probe.rmrs(&mem);
    let probe = RmrProbe::start(&mem, 1);
    assert_eq!(
        tree.adaptive_find_next(&mem, 1, p),
        FindNextResult::Next(p + 1)
    );
    let adaptive = probe.rmrs(&mem);
    assert!(plain >= 14, "plain should climb the full height: {plain}");
    assert!(
        adaptive <= 3,
        "adaptive should sidestep in O(1): {adaptive}"
    );
}

/// Claim 20: Remove() costs O(log_B A_t) — measured cumulatively while
/// the abort count grows.
#[test]
fn remove_cost_grows_logarithmically() {
    let n = 1 << 12;
    let b = 2;
    let mut builder = MemoryBuilder::new();
    let tree = Tree::layout(&mut builder, n, b);
    let mem = builder.build_cc(1);
    let mut worst = 0u64;
    for q in 1..n as u64 {
        let before = mem.total_rmrs();
        tree.remove(&mem, 0, q);
        worst = worst.max(mem.total_rmrs() - before);
    }
    // Height is 12; each Remove touches at most the height, and most
    // touch far fewer.
    assert!(worst <= 12, "Remove exceeded the height bound: {worst}");
}

/// Comparison shape of Table 1: at high abort counts our lock beats the
/// O(log N) tournament, and both beat Scott's queue walk.
#[test]
fn table1_ordering_holds_at_high_abort_count() {
    let n = 128;
    let a = 126;
    let ours = adaptive_sweep(LockKind::OneShot { b: 16 }, n, a, 21).unwrap();
    let tournament = adaptive_sweep(LockKind::Tournament, n, a, 21).unwrap();
    let scott = adaptive_sweep(LockKind::Scott, n, a, 21).unwrap();
    assert!(ours.mutex_ok && tournament.mutex_ok && scott.mutex_ok);
    assert!(
        ours.max_entered_rmrs < scott.max_entered_rmrs,
        "ours ({}) should beat scott ({}) under abort storms",
        ours.max_entered_rmrs,
        scott.max_entered_rmrs
    );
}
