//! Executable complexity bounds: the RMR claims of Theorem 2, Claim 20,
//! Claim 21 and Claim 28, checked as inequalities on measured counts.
//! These are the paper's *theorems* as tests — generous constants, but
//! the asymptotic shape is pinned: costs must track `log_B A` (not `N`),
//! no-abort passages must be flat, and the long-lived wrapper must add
//! only a constant.

use sal_bench::{
    adaptive_sweep, amortized_sweep, build_lock, no_abort_sweep, worst_case_sweep, LockKind,
};
use sal_core::tree::{FindNextResult, Tree};
use sal_memory::{Mem, MemoryBuilder, RmrProbe};

fn log_b(b: usize, x: usize) -> u64 {
    let mut h = 1u64;
    let mut cap = b;
    while cap < x {
        cap *= b;
        h += 1;
    }
    h
}

/// Abstract claim: "if no process aborts during a passage, its RMR cost
/// is O(1)" — flat in N.
#[test]
fn no_abort_passages_are_constant_in_n() {
    let mut costs = Vec::new();
    for &n in &[8usize, 32, 128] {
        let p = no_abort_sweep(LockKind::OneShot { b: 8 }, n, 1, 5).unwrap();
        assert!(p.mutex_ok);
        costs.push(p.max_entered_rmrs);
    }
    let max = *costs.iter().max().unwrap();
    assert!(max <= 12, "no-abort passage not O(1): {costs:?}");
    // And flat: N=128 costs no more than N=8 plus slack.
    assert!(
        costs[2] <= costs[0] + 3,
        "no-abort cost grows with N: {costs:?}"
    );
}

/// Theorem 2: a complete passage costs O(log_B A_i).
#[test]
fn complete_passage_tracks_log_b_of_aborters() {
    let n = 128;
    let b = 4;
    for &a in &[0usize, 4, 16, 64, 126] {
        let p = adaptive_sweep(LockKind::OneShot { b }, n, a, 9).unwrap();
        assert!(p.mutex_ok);
        let bound = 8 * log_b(b, a.max(2)) + 16;
        assert!(
            p.max_entered_rmrs <= bound,
            "A={a}: {} RMRs exceeds c·log_{b}(A) = {bound}",
            p.max_entered_rmrs
        );
    }
}

/// Theorem 2: an aborted attempt costs O(log_B A_t).
#[test]
fn aborted_attempt_tracks_log_b_of_total_aborters() {
    let n = 128;
    let b = 4;
    for &a in &[1usize, 8, 32, 126] {
        let p = adaptive_sweep(LockKind::OneShot { b }, n, a, 13).unwrap();
        let bound = 8 * log_b(b, a.max(2)) + 16;
        assert!(
            p.max_aborted_rmrs <= bound,
            "A={a}: aborted attempt cost {} exceeds {bound}",
            p.max_aborted_rmrs
        );
    }
}

/// The worst case is O(log_B N) — and larger B genuinely flattens it
/// (the time/space trade-off of §1).
#[test]
fn worst_case_flattens_with_branching_factor() {
    let n = 128;
    let narrow = worst_case_sweep(LockKind::OneShot { b: 2 }, n, 3).unwrap();
    let wide = worst_case_sweep(LockKind::OneShot { b: 64 }, n, 3).unwrap();
    assert!(narrow.mutex_ok && wide.mutex_ok);
    assert!(
        wide.max_entered_rmrs < narrow.max_entered_rmrs,
        "B=64 ({}) should beat B=2 ({})",
        wide.max_entered_rmrs,
        narrow.max_entered_rmrs
    );
    assert!(
        wide.max_entered_rmrs <= 14,
        "B=64 at N=128 is the O(1) regime: {}",
        wide.max_entered_rmrs
    );
}

/// Claim 28: the long-lived wrapper preserves the one-shot cost up to a
/// constant — including the lazy-reset overhead of recycled instances.
#[test]
fn long_lived_adds_only_a_constant() {
    // "Constant" means independent of N, not small: the switching
    // passage pays for lazy resets, the descriptor CAS, and the spin-pool
    // scan step, but none of that may grow with the process count.
    let small = no_abort_sweep(LockKind::LongLived { b: 8 }, 8, 3, 3).unwrap();
    let large = no_abort_sweep(LockKind::LongLived { b: 8 }, 64, 3, 3).unwrap();
    assert!(small.mutex_ok && large.mutex_ok);
    assert!(
        large.max_entered_rmrs <= small.max_entered_rmrs + 10,
        "wrapper overhead grows with N: {} (N=8) vs {} (N=64)",
        small.max_entered_rmrs,
        large.max_entered_rmrs
    );
    // And it stays within a fixed multiple of the bare one-shot passage.
    let one_shot = no_abort_sweep(LockKind::OneShot { b: 8 }, 16, 1, 3).unwrap();
    assert!(
        large.max_entered_rmrs <= one_shot.max_entered_rmrs * 6 + 10,
        "wrapper blow-up: {} vs one-shot {}",
        large.max_entered_rmrs,
        one_shot.max_entered_rmrs
    );
}

/// Claim 21 at the data-structure level: AdaptiveFindNext pays per
/// *aborter*, the plain ascent pays per *tree height*.
#[test]
fn adaptive_ascent_beats_plain_at_subtree_boundaries() {
    let n = 1 << 14;
    let mut builder = MemoryBuilder::new();
    let tree = Tree::layout(&mut builder, n, 2);
    let mem = builder.build_cc(2);
    let p = (n / 2 - 1) as u64;
    let probe = RmrProbe::start(&mem, 0);
    assert_eq!(tree.find_next(&mem, 0, p), FindNextResult::Next(p + 1));
    let plain = probe.rmrs(&mem);
    let probe = RmrProbe::start(&mem, 1);
    assert_eq!(
        tree.adaptive_find_next(&mem, 1, p),
        FindNextResult::Next(p + 1)
    );
    let adaptive = probe.rmrs(&mem);
    assert!(plain >= 14, "plain should climb the full height: {plain}");
    assert!(
        adaptive <= 3,
        "adaptive should sidestep in O(1): {adaptive}"
    );
}

/// Claim 20: Remove() costs O(log_B A_t) — measured cumulatively while
/// the abort count grows.
#[test]
fn remove_cost_grows_logarithmically() {
    let n = 1 << 12;
    let b = 2;
    let mut builder = MemoryBuilder::new();
    let tree = Tree::layout(&mut builder, n, b);
    let mem = builder.build_cc(1);
    let mut worst = 0u64;
    for q in 1..n as u64 {
        let before = mem.total_rmrs();
        tree.remove(&mem, 0, q);
        worst = worst.max(mem.total_rmrs() - before);
    }
    // Height is 12; each Remove touches at most the height, and most
    // touch far fewer.
    assert!(worst <= 12, "Remove exceeded the height bound: {worst}");
}

// ---- amortized bounds (Jayanti–Jayanti, arXiv 1809.04561) -----------
//
// The JJ lock's claim is *amortized*: a single passage may be expensive
// (an exit walk pays for every node abandoned in front of it), but the
// cumulative RMR count of a whole run is c·passages + b for constants
// independent of N. The debt ledger below is that statement as an
// inequality on measured totals; the adversarial test pins the "single
// passage may exceed it" half so the amortized and worst-case columns
// can never be conflated.

/// Debt-ledger constants: generous, but independent of N — that
/// independence is the theorem.
const JJ_C: u64 = 14;
const JJ_B: u64 = 24;

/// Cumulative RMRs ≤ c·passages + b at N ∈ {2, 4, 8}, across seeds,
/// under the abandonment-heavy half-aborting workload. Accounting is
/// cross-checked bit-exactly against the memory's own counters.
#[test]
fn jj_amortized_debt_ledger_is_linear_in_passages() {
    for &n in &[2usize, 4, 8] {
        for seed in [7u64, 21, 42] {
            let p = amortized_sweep(LockKind::JjAmortized, n, 4, 4, seed).unwrap();
            assert!(p.mutex_ok, "N={n} seed={seed}: mutual exclusion");
            assert!(p.accounting_ok, "N={n} seed={seed}: probe totals diverged");
            let s = p.stats;
            assert!(s.passages > 0, "N={n} seed={seed}: empty run");
            assert!(
                s.total_rmrs <= JJ_C * s.passages + JJ_B,
                "N={n} seed={seed}: {} RMRs over {} passages exceeds {JJ_C}·p + {JJ_B}",
                s.total_rmrs,
                s.passages
            );
        }
    }
}

/// The amortized cost is flat in N while the O(log N) tournament
/// tree's grows — the Table-1 "Amortized" column's shape, pinned.
#[test]
fn jj_amortized_flat_while_tournament_grows() {
    let jj2 = amortized_sweep(LockKind::JjAmortized, 2, 6, 4, 3).unwrap();
    let jj8 = amortized_sweep(LockKind::JjAmortized, 8, 6, 4, 3).unwrap();
    let t2 = amortized_sweep(LockKind::Tournament, 2, 6, 4, 3).unwrap();
    let t8 = amortized_sweep(LockKind::Tournament, 8, 6, 4, 3).unwrap();
    for p in [&jj2, &jj8, &t2, &t8] {
        assert!(p.mutex_ok && p.accounting_ok, "{}", p.lock);
    }
    assert!(
        jj8.stats.amortized_rmrs <= jj2.stats.amortized_rmrs * 1.5 + 1.0,
        "jj-amortized grew with N: {:.2} (N=2) → {:.2} (N=8)",
        jj2.stats.amortized_rmrs,
        jj8.stats.amortized_rmrs
    );
    assert!(
        t8.stats.amortized_rmrs >= t2.stats.amortized_rmrs + 1.0,
        "tournament should grow with N: {:.2} (N=2) → {:.2} (N=8)",
        t2.stats.amortized_rmrs,
        t8.stats.amortized_rmrs
    );
}

/// Adversarial schedule: a crowd abandons in the queue and a single
/// exit walk pays for all of them. That one passage must exceed the
/// amortized constant (this is what "amortized, not worst-case" means)
/// — yet the run total stays inside the debt ledger, because every
/// abandoned node is deposited once and consumed once.
#[test]
fn jj_single_passage_debt_exceeds_amortized_but_total_stays_linear() {
    use sal_runtime::{run_lock, ProcPlan, RandomSchedule, WorkloadSpec};
    let n = 8;
    let mut plans = vec![ProcPlan::normal(3)];
    // Pre-fired aborters: they enqueue a node, abandon it immediately,
    // and retry — maximal deposits per consuming walk.
    plans.extend(vec![ProcPlan::aborter(3, 0); n - 2]);
    plans.push(ProcPlan::normal(3));
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(LockKind::JjAmortized, n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 60_000_000,
        lease: sal_runtime::default_lease(),
    };
    let report = run_lock(
        &*built.lock,
        &built.mem,
        built.cs_word,
        &spec,
        Box::new(RandomSchedule::seeded(11)),
    )
    .unwrap();
    assert!(report.mutex_check.is_ok());
    let a = report.stats.amortized();
    assert_eq!(
        a.total_rmrs,
        built.mem.total_rmrs(),
        "probe totals must match the memory ground truth bit-exactly"
    );
    assert!(a.aborted > 0, "the crowd must actually abandon");
    assert!(
        (a.max_passage_rmrs as f64) >= a.amortized_rmrs + 8.0,
        "worst single passage ({}) should clearly exceed the amortized cost ({:.2})",
        a.max_passage_rmrs,
        a.amortized_rmrs
    );
    assert!(
        a.total_rmrs <= JJ_C * a.passages + JJ_B,
        "total {} over {} passages broke the ledger",
        a.total_rmrs,
        a.passages
    );
}

/// Comparison shape of Table 1: at high abort counts our lock beats the
/// O(log N) tournament, and both beat Scott's queue walk.
#[test]
fn table1_ordering_holds_at_high_abort_count() {
    let n = 128;
    let a = 126;
    let ours = adaptive_sweep(LockKind::OneShot { b: 16 }, n, a, 21).unwrap();
    let tournament = adaptive_sweep(LockKind::Tournament, n, a, 21).unwrap();
    let scott = adaptive_sweep(LockKind::Scott, n, a, 21).unwrap();
    assert!(ours.mutex_ok && tournament.mutex_ok && scott.mutex_ok);
    assert!(
        ours.max_entered_rmrs < scott.max_entered_rmrs,
        "ours ({}) should beat scott ({}) under abort storms",
        ours.max_entered_rmrs,
        scott.max_entered_rmrs
    );
}
