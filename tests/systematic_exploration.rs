//! Systematic (bounded-deviation) exploration of the paper's locks:
//! every schedule within the deviation budget must preserve mutual
//! exclusion, resolve every attempt, and never lose a handoff. This is
//! the strongest correctness evidence in the suite — thousands of
//! *distinct* interleavings, not samples.

use sal_core::long_lived::BoundedLongLivedLock;
use sal_core::one_shot::OneShotLock;
use sal_core::tree::Ascent;
use sal_memory::{Layered, Mem, MemoryBuilder, SignalFn};
use sal_runtime::{
    explore, explore_guided, simulate, EventKind, ExploreOptions, ForcedSchedule, GuidedOutcome,
    OpTraceSink, SimOptions, Strategy,
};

/// Drive the one-shot lock under one forced schedule, recording the op
/// trace; `aborter_delay[p]` = Some(steps) makes process `p` abort
/// after that many global steps in `enter`.
fn one_shot_guided(
    policy: ForcedSchedule,
    n: usize,
    b: usize,
    aborter_delay: &[Option<u64>],
) -> GuidedOutcome {
    let mut builder = MemoryBuilder::new();
    let lock = OneShotLock::layout_with(&mut builder, n, b, Ascent::Adaptive);
    let cs = builder.alloc(0);
    let mem = builder.build_cc(n);
    let traced = Layered::over(&mem, OpTraceSink::new());
    let report = simulate(
        &traced,
        n,
        Box::new(policy),
        SimOptions {
            max_steps: 100_000,
            abort_plan: vec![],
            lease: sal_runtime::default_lease(),
        },
        |ctx| {
            let entered = match aborter_delay[ctx.pid] {
                None => lock
                    .enter(ctx.mem, ctx.pid, &sal_memory::NeverAbort)
                    .entered(),
                Some(delay) => {
                    let deadline = ctx.steps() + delay;
                    let sig = SignalFn(|| ctx.steps() >= deadline);
                    lock.enter(ctx.mem, ctx.pid, &sig).entered()
                }
            };
            if entered {
                ctx.event(EventKind::CsEnter);
                ctx.mem.faa(ctx.pid, cs, 1);
                ctx.event(EventKind::CsLeave);
                lock.exit(ctx.mem, ctx.pid);
            } else {
                ctx.event(EventKind::Aborted);
            }
        },
    );
    // Verdict reads below go through the raw `mem`, so the trace stays
    // step-aligned with the schedule.
    let ops = traced.into_layer().take();
    let verdict = (|| {
        let report = report.map_err(|e| e.to_string())?;
        report
            .log
            .check_mutual_exclusion()
            .map_err(|v| format!("mutual exclusion violated: {v:?}"))?;
        let outcomes = report.log.outcomes(n);
        let resolved: usize = outcomes.iter().map(|o| o.0 + o.1).sum();
        if resolved != n {
            return Err(format!("only {resolved}/{n} attempts resolved"));
        }
        let entered: usize = outcomes.iter().map(|o| o.0).sum();
        if mem.read(0, cs) != entered as u64 {
            return Err("CS counter inconsistent".into());
        }
        // Non-aborting processes must always enter (no lost handoff).
        for (p, o) in outcomes.iter().enumerate() {
            if aborter_delay[p].is_none() && o.0 != 1 {
                return Err(format!("process {p} lost its handoff"));
            }
        }
        Ok(())
    })();
    GuidedOutcome {
        verdict,
        ops,
        cost: 0,
    }
}

fn one_shot_run(
    policy: ForcedSchedule,
    n: usize,
    b: usize,
    aborter_delay: &[Option<u64>],
) -> Result<(), String> {
    one_shot_guided(policy, n, b, aborter_delay).verdict
}

#[test]
fn one_shot_three_processes_no_aborts() {
    let delays = [None, None, None];
    let result = explore(
        &ExploreOptions {
            max_deviations: 2,
            max_runs: 4_000,
            max_branch_depth: 60,
            ..ExploreOptions::default()
        },
        |policy| one_shot_run(policy, 3, 2, &delays),
    );
    result.assert_ok();
    assert!(result.runs > 200, "explored only {} schedules", result.runs);
}

#[test]
fn one_shot_with_an_impatient_aborter() {
    // Process 1 aborts almost immediately — its Remove races every
    // possible position of the others' FindNext.
    let delays = [None, Some(2), None];
    let result = explore(
        &ExploreOptions {
            max_deviations: 2,
            max_runs: 4_000,
            max_branch_depth: 60,
            ..ExploreOptions::default()
        },
        |policy| one_shot_run(policy, 3, 2, &delays),
    );
    result.assert_ok();
    assert!(result.runs > 200);
}

#[test]
fn one_shot_two_aborters_crossing_paths() {
    let delays = [None, Some(1), Some(3), None];
    let result = explore(
        &ExploreOptions {
            max_deviations: 1,
            max_runs: 4_000,
            max_branch_depth: 80,
            ..ExploreOptions::default()
        },
        |policy| one_shot_run(policy, 4, 2, &delays),
    );
    result.assert_ok();
    assert!(result.runs > 40, "explored only {} schedules", result.runs);
}

#[test]
fn long_lived_two_processes_two_passages() {
    let result = explore(
        &ExploreOptions {
            max_deviations: 1,
            max_runs: 3_000,
            max_branch_depth: 120,
            ..ExploreOptions::default()
        },
        |policy| {
            let n = 2;
            let mut builder = MemoryBuilder::new();
            let lock = BoundedLongLivedLock::layout(&mut builder, n, 2);
            let cs = builder.alloc(0);
            let mem = builder.build_cc(n);
            let report = simulate(
                &mem,
                n,
                Box::new(policy),
                SimOptions {
                    max_steps: 200_000,
                    abort_plan: vec![],
                    lease: sal_runtime::default_lease(),
                },
                |ctx| {
                    for _ in 0..2 {
                        let entered = lock.enter(ctx.mem, ctx.pid, &sal_memory::NeverAbort);
                        assert!(entered);
                        ctx.event(EventKind::CsEnter);
                        ctx.mem.faa(ctx.pid, cs, 1);
                        ctx.event(EventKind::CsLeave);
                        lock.exit(ctx.mem, ctx.pid);
                    }
                },
            )
            .map_err(|e| e.to_string())?;
            report
                .log
                .check_mutual_exclusion()
                .map_err(|v| format!("{v:?}"))?;
            if mem.read(0, cs) != 4 {
                return Err("missing passages".into());
            }
            Ok(())
        },
    );
    result.assert_ok();
    assert!(result.runs > 100, "explored only {} schedules", result.runs);
}

// ---- strategy equivalence -------------------------------------------
//
// DPOR pruning and best-first ordering must never change *what* the
// explorer concludes, only how fast it gets there: on every config
// above, both must report the same safety verdict as exhaustive BFS —
// and, when a violation exists, the same lexicographically least
// canonical witness.

/// Explore `run` under BFS, DPOR and best-first with a budget large
/// enough that nobody truncates, and assert verdict + canonical-witness
/// equality.
fn assert_strategies_agree(
    opts: &ExploreOptions,
    label: &str,
    run: impl Fn(ForcedSchedule) -> GuidedOutcome + Sync,
) {
    // Never stop early: different strategies reach their first
    // violation at different times, so equivalence is over the least
    // witness of the whole (pruned) search space.
    let opts = ExploreOptions {
        stop_on_violation: false,
        ..opts.clone()
    };
    let bfs = explore_guided(&opts, Strategy::Bfs, &run);
    assert!(
        !bfs.truncated,
        "{label}: BFS truncated at {} runs — budget too small for an equivalence check",
        bfs.runs
    );
    for strategy in [Strategy::Dpor, Strategy::BestFirst] {
        let r = explore_guided(&opts, strategy, &run);
        assert!(
            !r.truncated,
            "{label}/{}: truncated at {} runs",
            strategy.label(),
            r.runs
        );
        assert_eq!(
            bfs.violation.is_some(),
            r.violation.is_some(),
            "{label}: {} disagrees with BFS on safety (BFS: {:?}, {}: {:?})",
            strategy.label(),
            bfs.violation,
            strategy.label(),
            r.violation
        );
        assert_eq!(
            bfs.violation_canonical,
            r.violation_canonical,
            "{label}: {} found a different least witness",
            strategy.label()
        );
    }
}

#[test]
fn strategies_agree_on_every_one_shot_config() {
    let configs: &[(usize, usize, &[Option<u64>], usize)] = &[
        (3, 2, &[None, None, None], 2),
        (3, 2, &[None, Some(2), None], 2),
        (4, 2, &[None, Some(1), Some(3), None], 1),
    ];
    for &(n, b, delays, deviations) in configs {
        let opts = ExploreOptions {
            max_deviations: deviations,
            max_runs: 20_000,
            max_branch_depth: if n == 4 { 80 } else { 60 },
            ..ExploreOptions::default()
        };
        assert_strategies_agree(&opts, &format!("one-shot n={n} b={b}"), |policy| {
            one_shot_guided(policy, n, b, delays)
        });
    }
}

#[test]
fn strategies_agree_on_the_long_lived_config() {
    let opts = ExploreOptions {
        max_deviations: 1,
        max_runs: 20_000,
        max_branch_depth: 120,
        ..ExploreOptions::default()
    };
    assert_strategies_agree(&opts, "long-lived n=2", |policy| {
        let n = 2;
        let mut builder = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout(&mut builder, n, 2);
        let cs = builder.alloc(0);
        let mem = builder.build_cc(n);
        let traced = Layered::over(&mem, OpTraceSink::new());
        let report = simulate(
            &traced,
            n,
            Box::new(policy),
            SimOptions {
                max_steps: 200_000,
                abort_plan: vec![],
                lease: sal_runtime::default_lease(),
            },
            |ctx| {
                for _ in 0..2 {
                    let entered = lock.enter(ctx.mem, ctx.pid, &sal_memory::NeverAbort);
                    assert!(entered);
                    ctx.event(EventKind::CsEnter);
                    ctx.mem.faa(ctx.pid, cs, 1);
                    ctx.event(EventKind::CsLeave);
                    lock.exit(ctx.mem, ctx.pid);
                }
            },
        );
        let ops = traced.into_layer().take();
        let verdict = (|| {
            let report = report.map_err(|e| e.to_string())?;
            report
                .log
                .check_mutual_exclusion()
                .map_err(|v| format!("{v:?}"))?;
            if mem.read(0, cs) != 4 {
                return Err("missing passages".into());
            }
            Ok(())
        })();
        GuidedOutcome {
            verdict,
            ops,
            cost: 0,
        }
    });
}

/// One forced-schedule run of the Jayanti–Jayanti lock: `n` processes
/// take 2 passages each; `aborter_delay[p] = Some(k)` makes process
/// `p` signal abort `k` global steps into each enter (a signalled
/// enter may still win the CAS race and enter — both resolutions are
/// counted).
fn jj_guided(policy: ForcedSchedule, n: usize, aborter_delay: &[Option<u64>]) -> GuidedOutcome {
    let mut builder = MemoryBuilder::new();
    let lock = sal_core::long_lived::JjLock::layout(&mut builder, n);
    let cs = builder.alloc(0);
    let mem = builder.build_cc(n);
    let traced = Layered::over(&mem, OpTraceSink::new());
    let entered_total = std::sync::atomic::AtomicU64::new(0);
    let report = simulate(
        &traced,
        n,
        Box::new(policy),
        SimOptions {
            max_steps: 200_000,
            abort_plan: vec![],
            lease: sal_runtime::default_lease(),
        },
        |ctx| {
            for _ in 0..2 {
                let entered = match aborter_delay[ctx.pid] {
                    None => lock.enter(ctx.mem, ctx.pid, &sal_memory::NeverAbort),
                    Some(delay) => {
                        let deadline = ctx.steps() + delay;
                        let sig = SignalFn(|| ctx.steps() >= deadline);
                        lock.enter(ctx.mem, ctx.pid, &sig)
                    }
                };
                if entered {
                    ctx.event(EventKind::CsEnter);
                    ctx.mem.faa(ctx.pid, cs, 1);
                    ctx.event(EventKind::CsLeave);
                    lock.exit(ctx.mem, ctx.pid);
                    entered_total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                } else {
                    ctx.event(EventKind::Aborted);
                }
            }
        },
    );
    let ops = traced.into_layer().take();
    let verdict = (|| {
        let report = report.map_err(|e| e.to_string())?;
        report
            .log
            .check_mutual_exclusion()
            .map_err(|v| format!("mutual exclusion violated: {v:?}"))?;
        if mem.read(0, cs) != entered_total.load(std::sync::atomic::Ordering::Relaxed) {
            return Err("CS counter inconsistent".into());
        }
        // Non-aborting processes must complete both passages: no
        // abandoned node may wedge the queue.
        let expected: u64 = 2 * aborter_delay.iter().filter(|d| d.is_none()).count() as u64;
        if entered_total.load(std::sync::atomic::Ordering::Relaxed) < expected {
            return Err("a normal process lost a passage".into());
        }
        Ok(())
    })();
    GuidedOutcome {
        verdict,
        ops,
        cost: 0,
    }
}

#[test]
fn strategies_agree_on_the_jj_amortized_configs() {
    // Clean two-process config (every interleaving of 2×2 passages),
    // then an abandoning config: process 1 signals abort mid-enter,
    // exercising the abort/grant CAS race and the exit-walk consumption
    // of abandoned nodes under every explored schedule.
    let configs: &[(&str, &[Option<u64>])] = &[
        ("jj clean n=2", &[None, None]),
        ("jj aborting n=2", &[None, Some(6)]),
    ];
    for &(label, delays) in configs {
        let opts = ExploreOptions {
            max_deviations: 1,
            max_runs: 20_000,
            max_branch_depth: 120,
            ..ExploreOptions::default()
        };
        assert_strategies_agree(&opts, label, |policy| jj_guided(policy, 2, delays));
    }
}

/// A deliberately racy test-then-set "lock": the equivalence contract
/// must hold on *violating* configs too — all three strategies find a
/// violation and canonicalize to the same least witness.
fn broken_lock_guided(policy: ForcedSchedule) -> GuidedOutcome {
    let mut b = MemoryBuilder::new();
    let flag = b.alloc(0);
    let in_cs = b.alloc(0);
    let max_seen = b.alloc(0);
    let mem = b.build_cc(2);
    let traced = Layered::over(&mem, OpTraceSink::new());
    let report = simulate(&traced, 2, Box::new(policy), SimOptions::default(), |ctx| {
        // BROKEN: read, then write — not atomic.
        loop {
            if ctx.mem.read(ctx.pid, flag) == 0 {
                ctx.mem.write(ctx.pid, flag, 1); // should be CAS!
                break;
            }
        }
        let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
        let seen = ctx.mem.read(ctx.pid, max_seen);
        if inside > seen {
            ctx.mem.write(ctx.pid, max_seen, inside);
        }
        ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
        ctx.mem.write(ctx.pid, flag, 0);
    });
    let ops = traced.into_layer().take();
    let verdict = (|| {
        report.map_err(|e| e.to_string())?;
        if mem.read(0, max_seen) > 1 {
            Err("two processes in the CS".into())
        } else {
            Ok(())
        }
    })();
    GuidedOutcome {
        verdict,
        ops,
        cost: 0,
    }
}

#[test]
fn strategies_agree_on_a_violating_config() {
    let opts = ExploreOptions {
        max_deviations: 1,
        max_runs: 20_000,
        max_branch_depth: 100,
        ..ExploreOptions::default()
    };
    assert_strategies_agree(&opts, "broken test-then-set", broken_lock_guided);
    // And the witness really exists.
    let opts = ExploreOptions {
        stop_on_violation: false,
        ..opts
    };
    let r = explore_guided(&opts, Strategy::Dpor, broken_lock_guided);
    assert!(r.violation.is_some(), "DPOR missed the race entirely");
    assert!(
        r.violation_canonical.is_some(),
        "violation must come with its canonical witness"
    );
}
