//! Systematic (bounded-deviation) exploration of the paper's locks:
//! every schedule within the deviation budget must preserve mutual
//! exclusion, resolve every attempt, and never lose a handoff. This is
//! the strongest correctness evidence in the suite — thousands of
//! *distinct* interleavings, not samples.

use sal_core::long_lived::BoundedLongLivedLock;
use sal_core::one_shot::OneShotLock;
use sal_core::tree::Ascent;
use sal_memory::{Mem, MemoryBuilder, SignalFn};
use sal_runtime::{explore, simulate, EventKind, ExploreOptions, SimOptions};

/// Drive the one-shot lock under one forced schedule; `aborter_delay[p]`
/// = Some(steps) makes process `p` abort after that many global steps in
/// `enter`.
fn one_shot_run(
    policy: sal_runtime::ForcedSchedule,
    n: usize,
    b: usize,
    aborter_delay: &[Option<u64>],
) -> Result<(), String> {
    let mut builder = MemoryBuilder::new();
    let lock = OneShotLock::layout_with(&mut builder, n, b, Ascent::Adaptive);
    let cs = builder.alloc(0);
    let mem = builder.build_cc(n);
    let report = simulate(
        &mem,
        n,
        Box::new(policy),
        SimOptions {
            max_steps: 100_000,
            abort_plan: vec![],
            lease: sal_runtime::default_lease(),
        },
        |ctx| {
            let entered = match aborter_delay[ctx.pid] {
                None => lock
                    .enter(ctx.mem, ctx.pid, &sal_memory::NeverAbort)
                    .entered(),
                Some(delay) => {
                    let deadline = ctx.steps() + delay;
                    let sig = SignalFn(|| ctx.steps() >= deadline);
                    lock.enter(ctx.mem, ctx.pid, &sig).entered()
                }
            };
            if entered {
                ctx.event(EventKind::CsEnter);
                ctx.mem.faa(ctx.pid, cs, 1);
                ctx.event(EventKind::CsLeave);
                lock.exit(ctx.mem, ctx.pid);
            } else {
                ctx.event(EventKind::Aborted);
            }
        },
    )
    .map_err(|e| e.to_string())?;
    report
        .log
        .check_mutual_exclusion()
        .map_err(|v| format!("mutual exclusion violated: {v:?}"))?;
    let outcomes = report.log.outcomes(n);
    let resolved: usize = outcomes.iter().map(|o| o.0 + o.1).sum();
    if resolved != n {
        return Err(format!("only {resolved}/{n} attempts resolved"));
    }
    let entered: usize = outcomes.iter().map(|o| o.0).sum();
    if mem.read(0, cs) != entered as u64 {
        return Err("CS counter inconsistent".into());
    }
    // Non-aborting processes must always enter (no lost handoff).
    for (p, o) in outcomes.iter().enumerate() {
        if aborter_delay[p].is_none() && o.0 != 1 {
            return Err(format!("process {p} lost its handoff"));
        }
    }
    Ok(())
}

#[test]
fn one_shot_three_processes_no_aborts() {
    let delays = [None, None, None];
    let result = explore(
        &ExploreOptions {
            max_deviations: 2,
            max_runs: 4_000,
            max_branch_depth: 60,
            ..ExploreOptions::default()
        },
        |policy| one_shot_run(policy, 3, 2, &delays),
    );
    result.assert_ok();
    assert!(result.runs > 200, "explored only {} schedules", result.runs);
}

#[test]
fn one_shot_with_an_impatient_aborter() {
    // Process 1 aborts almost immediately — its Remove races every
    // possible position of the others' FindNext.
    let delays = [None, Some(2), None];
    let result = explore(
        &ExploreOptions {
            max_deviations: 2,
            max_runs: 4_000,
            max_branch_depth: 60,
            ..ExploreOptions::default()
        },
        |policy| one_shot_run(policy, 3, 2, &delays),
    );
    result.assert_ok();
    assert!(result.runs > 200);
}

#[test]
fn one_shot_two_aborters_crossing_paths() {
    let delays = [None, Some(1), Some(3), None];
    let result = explore(
        &ExploreOptions {
            max_deviations: 1,
            max_runs: 4_000,
            max_branch_depth: 80,
            ..ExploreOptions::default()
        },
        |policy| one_shot_run(policy, 4, 2, &delays),
    );
    result.assert_ok();
    assert!(result.runs > 40, "explored only {} schedules", result.runs);
}

#[test]
fn long_lived_two_processes_two_passages() {
    let result = explore(
        &ExploreOptions {
            max_deviations: 1,
            max_runs: 3_000,
            max_branch_depth: 120,
            ..ExploreOptions::default()
        },
        |policy| {
            let n = 2;
            let mut builder = MemoryBuilder::new();
            let lock = BoundedLongLivedLock::layout(&mut builder, n, 2);
            let cs = builder.alloc(0);
            let mem = builder.build_cc(n);
            let report = simulate(
                &mem,
                n,
                Box::new(policy),
                SimOptions {
                    max_steps: 200_000,
                    abort_plan: vec![],
                    lease: sal_runtime::default_lease(),
                },
                |ctx| {
                    for _ in 0..2 {
                        let entered = lock.enter(ctx.mem, ctx.pid, &sal_memory::NeverAbort);
                        assert!(entered);
                        ctx.event(EventKind::CsEnter);
                        ctx.mem.faa(ctx.pid, cs, 1);
                        ctx.event(EventKind::CsLeave);
                        lock.exit(ctx.mem, ctx.pid);
                    }
                },
            )
            .map_err(|e| e.to_string())?;
            report
                .log
                .check_mutual_exclusion()
                .map_err(|v| format!("{v:?}"))?;
            if mem.read(0, cs) != 4 {
                return Err("missing passages".into());
            }
            Ok(())
        },
    );
    result.assert_ok();
    assert!(result.runs > 100, "explored only {} schedules", result.runs);
}
