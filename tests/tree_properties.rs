//! Property-based tests (seeded random cases) of the `Tree` data
//! structure and the descriptor packings: sequential equivalence with a
//! reference model, the Lemma-1 equivalence of the two ascents, the
//! Remove invariant (Corollary 5), and pack/unpack round trips.
//!
//! The build environment is offline, so instead of an external
//! property-testing crate these run a deterministic `SmallRng` sweep:
//! every case is reproducible from its printed seed.

use sal_core::long_lived::{SimpleDesc, TaggedDesc, VersionDesc};
use sal_core::tree::{FindNextResult, Tree};
use sal_memory::{Mem, MemoryBuilder};
use sal_runtime::SmallRng;

fn model_next(removed: &[bool], p: usize) -> FindNextResult {
    match (p + 1..removed.len()).find(|&q| !removed[q]) {
        Some(q) => FindNextResult::Next(q as u64),
        None => FindNextResult::Bottom,
    }
}

/// Build a random tree state: returns `(tree, mem, removed)` with the
/// removals already applied by process 0.
fn random_state(
    rng: &mut SmallRng,
    n: usize,
    b: usize,
    nprocs: usize,
    keep_last: bool,
) -> (Tree, sal_memory::CcMemory, Vec<bool>) {
    let mut builder = MemoryBuilder::new();
    let tree = Tree::layout(&mut builder, n, b);
    let mem = builder.build_cc(nprocs);
    let mut removed = vec![false; n];
    for _ in 0..rng.random_range(0..n + 1) {
        let r = rng.random_range(0..n);
        if keep_last && r == n - 1 {
            continue;
        }
        if !removed[r] {
            removed[r] = true;
            tree.remove(&mem, 0, r as u64);
        }
    }
    (tree, mem, removed)
}

/// Sequentially (no concurrency), FindNext(p) returns exactly the first
/// non-removed slot after p, for every branching factor.
#[test]
fn find_next_matches_reference_model() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.random_range(1..96);
        let b = rng.random_range(2..65);
        let (tree, mem, removed) = random_state(&mut rng, n, b, 1, false);
        for _ in 0..rng.random_range(1..32) {
            let q = rng.random_range(0..n);
            let want = model_next(&removed, q);
            assert_eq!(
                tree.find_next(&mem, 0, q as u64),
                want,
                "seed {seed}, n={n}, b={b}, q={q}"
            );
        }
    }
}

/// Lemma 1 (sequential projection): AdaptiveFindNext returns the same
/// result as FindNext in every quiescent state.
#[test]
fn adaptive_equals_plain_when_quiescent() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.random_range(1..96);
        let b = rng.random_range(2..65);
        let (tree, mem, _removed) = random_state(&mut rng, n, b, 2, false);
        for p in 0..n as u64 {
            assert_eq!(
                tree.adaptive_find_next(&mem, 1, p),
                tree.find_next(&mem, 1, p),
                "seed {seed}, n={n}, b={b}, p={p}"
            );
        }
    }
}

/// Remove invariant (Corollary 5, part 2): a slot whose Remove was never
/// invoked has all its bits clear — observable as: it is always findable
/// by its left neighbour.
#[test]
fn live_slots_remain_findable() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.random_range(2..64);
        let b = rng.random_range(2..17);
        // Keep slot n-1 alive so there is always a findable slot.
        let (tree, mem, removed) = random_state(&mut rng, n, b, 1, true);
        // From any slot, repeatedly following FindNext visits exactly
        // the live slots, in order.
        let mut cur = 0u64;
        while removed[cur as usize] {
            cur += 1;
        }
        let mut visited = vec![cur];
        loop {
            match tree.find_next(&mem, 0, cur) {
                FindNextResult::Next(q) => {
                    assert!(!removed[q as usize], "seed {seed}: returned a removed slot");
                    visited.push(q);
                    cur = q;
                }
                FindNextResult::Bottom => break,
                FindNextResult::Top => panic!("seed {seed}: ⊤ without concurrency"),
            }
        }
        let live: Vec<u64> = (0..n as u64).filter(|&q| !removed[q as usize]).collect();
        let expected: Vec<u64> = live.into_iter().filter(|&q| q >= visited[0]).collect();
        assert_eq!(visited, expected, "seed {seed}, n={n}, b={b}");
    }
}

/// Remove cost is O(log_B A): it never touches more nodes than the
/// height, and every removal pays at least one RMR.
#[test]
fn remove_cost_is_bounded_by_height() {
    for seed in 0..256u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.random_range(2..512);
        let b = rng.random_range(2..17);
        let p = rng.random_range(0..n);
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, n, b);
        let mem = builder.build_cc(1);
        let before = mem.total_rmrs();
        tree.remove(&mem, 0, p as u64);
        let cost = mem.total_rmrs() - before;
        assert!(
            cost as usize <= tree.geometry().height(),
            "seed {seed}, n={n}, b={b}, p={p}: cost {cost}"
        );
        assert!(cost >= 1, "seed {seed}");
    }
}

#[test]
fn simple_desc_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0xD15C);
    for _ in 0..512 {
        let d = SimpleDesc {
            lock: rng.random_range(0..1 << 24) as u32,
            spn: rng.random_range(0..1 << 24) as u32,
            refcnt: rng.random_range(0..1 << 16) as u32,
        };
        assert_eq!(SimpleDesc::unpack(d.pack()), d);
    }
}

#[test]
fn tagged_desc_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0x7A66);
    for _ in 0..512 {
        let d = TaggedDesc {
            seq: rng.random_range(0..1 << 20) as u32,
            lock: rng.random_range(0..1 << 12) as u32,
            spn: rng.random_range(0..1 << 20) as u32,
            refcnt: rng.random_range(0..1 << 12) as u32,
        };
        assert_eq!(TaggedDesc::unpack(d.pack()), d);
        // F&A on the packed word touches only the refcount.
        if d.refcnt < (1 << 12) - 1 {
            let bumped = TaggedDesc::unpack(d.pack() + 1);
            assert_eq!(
                bumped,
                TaggedDesc {
                    refcnt: d.refcnt + 1,
                    ..d
                }
            );
        }
    }
}

#[test]
fn version_desc_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0x5E40);
    for _ in 0..512 {
        let d = VersionDesc {
            version: rng.next_u64() & ((1 << 62) - 1),
            bit: rng.random_range(0..2) as u8,
        };
        assert_eq!(VersionDesc::unpack(d.pack()), d);
    }
}

/// Distinct descriptors pack to distinct words (injectivity — the
/// property the line-76 CAS depends on).
#[test]
fn tagged_desc_packing_is_injective() {
    let mut rng = SmallRng::seed_from_u64(0x1A3);
    let random_desc = |rng: &mut SmallRng| TaggedDesc {
        seq: rng.random_range(0..1 << 20) as u32,
        lock: rng.random_range(0..1 << 12) as u32,
        spn: rng.random_range(0..1 << 20) as u32,
        refcnt: rng.random_range(0..1 << 12) as u32,
    };
    for _ in 0..512 {
        let a = random_desc(&mut rng);
        let mut b = random_desc(&mut rng);
        // Half the cases compare near-identical descriptors, so the
        // equality side of the biconditional is actually exercised.
        if rng.random_bool(0.5) {
            b = a;
            if rng.random_bool(0.5) {
                b.spn = (b.spn + 1) % (1 << 20);
            }
        }
        assert_eq!(a == b, a.pack() == b.pack(), "a={a:?} b={b:?}");
    }
}

/// Concurrent property: under arbitrary random schedules of removers and
/// finders, FindNext never returns a slot whose Remove *completed*
/// before the FindNext was invoked (Corollary 8), and never returns a
/// smaller-or-equal slot (Property 6).
#[test]
fn concurrent_find_next_respects_completed_removes() {
    use sal_runtime::{simulate, RandomSchedule, SimOptions};
    use std::sync::Mutex;

    for seed in 0..60u64 {
        let n = 8usize;
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, n, 2);
        let mem = builder.build_cc(n);
        // Processes 1..5 remove themselves; processes 6,7 run FindNext
        // queries from slots 0 and 3.
        let results: Mutex<Vec<(u64, FindNextResult)>> = Mutex::new(Vec::new());
        simulate(
            &mem,
            n,
            Box::new(RandomSchedule::seeded(seed)),
            SimOptions::default(),
            |ctx| match ctx.pid {
                1..=5 => tree.remove(ctx.mem, ctx.pid, ctx.pid as u64),
                6 => {
                    let r = tree.find_next(ctx.mem, 6, 0);
                    results.lock().unwrap().push((0, r));
                }
                7 => {
                    let r = tree.adaptive_find_next(ctx.mem, 7, 3);
                    results.lock().unwrap().push((3, r));
                }
                _ => {}
            },
        )
        .unwrap();
        for (p, r) in results.into_inner().unwrap() {
            match r {
                FindNextResult::Next(q) => {
                    assert!(q > p, "Property 6 violated: {q} ≤ {p} (seed {seed})");
                    assert!(q < n as u64);
                    // Slots 6, 7 never removed; 1..=5 may or may not have
                    // completed their removal before the query — but a
                    // query that *finishes after* a completed Remove(q)
                    // cannot return q. We can't observe completion order
                    // here beyond the final state, so assert the weaker
                    // end-state property: q is a valid slot.
                }
                FindNextResult::Bottom => {
                    panic!("Bottom impossible: slots 6 and 7 never removed (seed {seed})")
                }
                FindNextResult::Top => {} // legal under concurrency
            }
        }
    }
}
