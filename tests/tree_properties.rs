//! Property-based tests (proptest) of the `Tree` data structure and the
//! descriptor packings: sequential equivalence with a reference model,
//! the Lemma-1 equivalence of the two ascents, the Remove invariant
//! (Corollary 5), and pack/unpack round trips.

use proptest::prelude::*;
use sal_core::long_lived::{SimpleDesc, TaggedDesc, VersionDesc};
use sal_core::tree::{FindNextResult, Tree};
use sal_memory::{Mem, MemoryBuilder};

fn model_next(removed: &[bool], p: usize) -> FindNextResult {
    match (p + 1..removed.len()).find(|&q| !removed[q]) {
        Some(q) => FindNextResult::Next(q as u64),
        None => FindNextResult::Bottom,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequentially (no concurrency), FindNext(p) returns exactly the
    /// first non-removed slot after p, for every branching factor.
    #[test]
    fn find_next_matches_reference_model(
        n in 1usize..96,
        b in 2usize..65,
        removals in proptest::collection::vec(0usize..96, 0..96),
        queries in proptest::collection::vec(0usize..96, 1..32),
    ) {
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, n, b);
        let mem = builder.build_cc(1);
        let mut removed = vec![false; n];
        for r in removals {
            let r = r % n;
            if !removed[r] {
                removed[r] = true;
                tree.remove(&mem, 0, r as u64);
            }
        }
        for q in queries {
            let q = q % n;
            let want = model_next(&removed, q);
            prop_assert_eq!(tree.find_next(&mem, 0, q as u64), want);
        }
    }

    /// Lemma 1 (sequential projection): AdaptiveFindNext returns the
    /// same result as FindNext in every quiescent state.
    #[test]
    fn adaptive_equals_plain_when_quiescent(
        n in 1usize..96,
        b in 2usize..65,
        removals in proptest::collection::vec(0usize..96, 0..96),
    ) {
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, n, b);
        let mem = builder.build_cc(2);
        let mut removed = vec![false; n];
        for r in removals {
            let r = r % n;
            if !removed[r] {
                removed[r] = true;
                tree.remove(&mem, 0, r as u64);
            }
        }
        for p in 0..n as u64 {
            prop_assert_eq!(
                tree.adaptive_find_next(&mem, 1, p),
                tree.find_next(&mem, 1, p),
                "p = {}", p
            );
        }
    }

    /// Remove invariant (Corollary 5, part 2): a slot whose Remove was
    /// never invoked has all its bits clear — observable as: it is
    /// always findable by its left neighbour.
    #[test]
    fn live_slots_remain_findable(
        n in 2usize..64,
        b in 2usize..17,
        removals in proptest::collection::vec(0usize..64, 0..64),
    ) {
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, n, b);
        let mem = builder.build_cc(1);
        let mut removed = vec![false; n];
        for r in removals {
            let r = r % n;
            // Keep slot n-1 alive so there is always a findable slot.
            if r != n - 1 && !removed[r] {
                removed[r] = true;
                tree.remove(&mem, 0, r as u64);
            }
        }
        // From any slot, repeatedly following FindNext visits exactly
        // the live slots, in order.
        let mut cur = 0u64;
        if removed[0] {
            // start from the first live slot
            while removed[cur as usize] {
                cur += 1;
            }
        }
        let mut visited = vec![cur];
        loop {
            match tree.find_next(&mem, 0, cur) {
                FindNextResult::Next(q) => {
                    prop_assert!(!removed[q as usize], "returned a removed slot");
                    visited.push(q);
                    cur = q;
                }
                FindNextResult::Bottom => break,
                FindNextResult::Top => prop_assert!(false, "⊤ without concurrency"),
            }
        }
        let live: Vec<u64> = (0..n as u64).filter(|&q| !removed[q as usize]).collect();
        let expected: Vec<u64> = live.into_iter().filter(|&q| q >= visited[0]).collect();
        prop_assert_eq!(visited, expected);
    }

    /// Remove cost is O(log_B A): it never touches more nodes than the
    /// height, and a removal whose sibling subtrees are live touches
    /// exactly one node.
    #[test]
    fn remove_cost_is_bounded_by_height(
        n in 2usize..512,
        b in 2usize..17,
        p in 0usize..512,
    ) {
        let p = p % n;
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, n, b);
        let mem = builder.build_cc(1);
        let before = mem.total_rmrs();
        tree.remove(&mem, 0, p as u64);
        let cost = mem.total_rmrs() - before;
        prop_assert!(cost as usize <= tree.geometry().height());
        prop_assert!(cost >= 1);
    }

    #[test]
    fn simple_desc_round_trips(lock in 0u32..(1 << 24), spn in 0u32..(1 << 24), refcnt in 0u32..(1 << 16)) {
        let d = SimpleDesc { lock, spn, refcnt };
        prop_assert_eq!(SimpleDesc::unpack(d.pack()), d);
    }

    #[test]
    fn tagged_desc_round_trips(
        seq in 0u32..(1 << 20),
        lock in 0u32..(1 << 12),
        spn in 0u32..(1 << 20),
        refcnt in 0u32..(1 << 12),
    ) {
        let d = TaggedDesc { seq, lock, spn, refcnt };
        prop_assert_eq!(TaggedDesc::unpack(d.pack()), d);
        // F&A on the packed word touches only the refcount.
        if refcnt < (1 << 12) - 1 {
            let bumped = TaggedDesc::unpack(d.pack() + 1);
            prop_assert_eq!(bumped, TaggedDesc { refcnt: refcnt + 1, ..d });
        }
    }

    #[test]
    fn version_desc_round_trips(version in 0u64..(1 << 62), bit in 0u8..2) {
        let d = VersionDesc { version, bit };
        prop_assert_eq!(VersionDesc::unpack(d.pack()), d);
    }

    /// Distinct descriptors pack to distinct words (injectivity — the
    /// property the line-76 CAS depends on).
    #[test]
    fn tagged_desc_packing_is_injective(
        a_seq in 0u32..(1 << 20), a_lock in 0u32..(1 << 12), a_spn in 0u32..(1 << 20), a_ref in 0u32..(1 << 12),
        b_seq in 0u32..(1 << 20), b_lock in 0u32..(1 << 12), b_spn in 0u32..(1 << 20), b_ref in 0u32..(1 << 12),
    ) {
        let a = TaggedDesc { seq: a_seq, lock: a_lock, spn: a_spn, refcnt: a_ref };
        let b = TaggedDesc { seq: b_seq, lock: b_lock, spn: b_spn, refcnt: b_ref };
        prop_assert_eq!(a == b, a.pack() == b.pack());
    }
}

/// Concurrent property: under arbitrary random schedules of removers and
/// finders, FindNext never returns a slot whose Remove *completed*
/// before the FindNext was invoked (Corollary 8), and never returns a
/// smaller-or-equal slot (Property 6).
#[test]
fn concurrent_find_next_respects_completed_removes() {
    use sal_runtime::{simulate, RandomSchedule, SimOptions};
    use std::sync::Mutex;

    for seed in 0..60u64 {
        let n = 8usize;
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, n, 2);
        let mem = builder.build_cc(n);
        // Processes 1..5 remove themselves; processes 6,7 run FindNext
        // queries from slots 0 and 3.
        let results: Mutex<Vec<(u64, FindNextResult)>> = Mutex::new(Vec::new());
        simulate(
            &mem,
            n,
            Box::new(RandomSchedule::seeded(seed)),
            SimOptions::default(),
            |ctx| match ctx.pid {
                1..=5 => tree.remove(ctx.mem, ctx.pid, ctx.pid as u64),
                6 => {
                    let r = tree.find_next(ctx.mem, 6, 0);
                    results.lock().unwrap().push((0, r));
                }
                7 => {
                    let r = tree.adaptive_find_next(ctx.mem, 7, 3);
                    results.lock().unwrap().push((3, r));
                }
                _ => {}
            },
        )
        .unwrap();
        for (p, r) in results.into_inner().unwrap() {
            match r {
                FindNextResult::Next(q) => {
                    assert!(q > p, "Property 6 violated: {q} ≤ {p} (seed {seed})");
                    assert!(q < n as u64);
                    // Slots 6, 7 never removed; 1..=5 may or may not have
                    // completed their removal before the query — but a
                    // query that *finishes after* a completed Remove(q)
                    // cannot return q. We can't observe completion order
                    // here beyond the final state, so assert the weaker
                    // end-state property: q is a valid slot.
                }
                FindNextResult::Bottom => {
                    panic!("Bottom impossible: slots 6 and 7 never removed (seed {seed})")
                }
                FindNextResult::Top => {} // legal under concurrency
            }
        }
    }
}
